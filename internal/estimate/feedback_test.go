package estimate

import (
	"math"
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/stats"
)

func TestQError(t *testing.T) {
	cases := []struct {
		act, est int64
		want     float64
	}{
		{100, 100, 1},
		{0, 0, 1},
		{50, 100, 2},
		{100, 50, 2},
		{1, 3, 3},
		{0, 7, math.Inf(1)},
		{7, 0, math.Inf(1)},
	}
	for _, tc := range cases {
		if got := qError(tc.act, tc.est); got != tc.want {
			t.Errorf("qError(%d, %d) = %v, want %v", tc.act, tc.est, got, tc.want)
		}
	}
}

func TestCalibratedThreshold(t *testing.T) {
	// Exact feedback keeps the base threshold; systematic inaccuracy
	// (high P90) shrinks it; absent or broken feedback forces
	// re-optimization on any drift.
	exact := &Feedback{Derivable: 4, Total: 4, MaxQ: 1, P90Q: 1}
	if got := exact.CalibratedThreshold(0.3); got != 0.3 {
		t.Errorf("exact threshold = %v, want 0.3", got)
	}
	shaky := &Feedback{Derivable: 4, Total: 4, MaxQ: 3, P90Q: 3}
	if got := shaky.CalibratedThreshold(0.3); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("shaky threshold = %v, want 0.1", got)
	}
	var nilFB *Feedback
	if got := nilFB.CalibratedThreshold(0.3); got != 0 {
		t.Errorf("nil feedback threshold = %v, want 0", got)
	}
	none := &Feedback{}
	if got := none.CalibratedThreshold(0.3); got != 0 {
		t.Errorf("underivable feedback threshold = %v, want 0", got)
	}

	d := stats.Drift{MaxRel: 0.2}
	if exact.ShouldReoptimize(d, 0.3) {
		t.Error("0.2 drift under exact 0.3 threshold should not re-optimize")
	}
	if !shaky.ShouldReoptimize(d, 0.3) {
		t.Error("0.2 drift over calibrated 0.1 threshold must re-optimize")
	}
}

// TestCalibratedThresholdSingleOutlier pins the de-flapping bugfix: one
// finite outlier among otherwise-exact derivations must no longer zero (or
// near-zero) the threshold — calibration divides by P90, not MaxQ.
func TestCalibratedThresholdSingleOutlier(t *testing.T) {
	outlier := &Feedback{Derivable: 10, Total: 10, MaxQ: 50, MeanQ: 5.9, P90Q: 1}
	got := outlier.CalibratedThreshold(0.3)
	if got != 0.3 {
		t.Errorf("single-outlier threshold = %v, want base 0.3 (P90 calibration)", got)
	}
	// The old MaxQ calibration would have returned 0.006 — effectively
	// re-optimizing on every run. Guard against regressing to it.
	if got < 0.3/2 {
		t.Errorf("single outlier collapsed threshold to %v", got)
	}
	// P90Q below 1 cannot inflate the threshold past base.
	sub := &Feedback{Derivable: 2, Total: 2, P90Q: 0.5}
	if got := sub.CalibratedThreshold(0.3); got != 0.3 {
		t.Errorf("sub-1 P90 threshold = %v, want clamped base 0.3", got)
	}
}

// TestCalibratedThresholdEmptySE pins the second half of the bugfix:
// unbounded q-errors whose actual was zero (over-predicted empty SEs) are
// noise, not broken derivations, and must not force reoptimize-every-run.
// A genuinely broken derivation — estimate zero against rows that exist —
// still zeroes the threshold.
func TestCalibratedThresholdEmptySE(t *testing.T) {
	empty := &Feedback{Derivable: 6, Total: 6, MaxQ: 1, P90Q: 1, Unbounded: 2, UnboundedEmpty: 2}
	if got := empty.CalibratedThreshold(0.3); got != 0.3 {
		t.Errorf("empty-SE unbounded threshold = %v, want 0.3", got)
	}
	broken := &Feedback{Derivable: 6, Total: 6, MaxQ: 1, P90Q: 1, Unbounded: 2, UnboundedEmpty: 1}
	if got := broken.CalibratedThreshold(0.3); got != 0 {
		t.Errorf("hard-unbounded threshold = %v, want 0", got)
	}
	// Only vacuous 0/0 evidence means the derivations went untested.
	vac := &Feedback{Derivable: 3, Total: 3, Vacuous: 3}
	if got := vac.CalibratedThreshold(0.3); got != 0 {
		t.Errorf("vacuous-only threshold = %v, want 0", got)
	}
}

func TestQuantileOf(t *testing.T) {
	cases := []struct {
		qs   []float64
		p    float64
		want float64
	}{
		{nil, 0.9, 0},
		{[]float64{1}, 0.9, 1},
		{[]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 50}, 0.9, 1},
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.9, 9},
		{[]float64{1, 2}, 0.9, 2},
		{[]float64{1, 2, 3}, 1.0, 3},
	}
	for _, tc := range cases {
		if got := quantileOf(tc.qs, tc.p); got != tc.want {
			t.Errorf("quantileOf(%v, %v) = %v, want %v", tc.qs, tc.p, got, tc.want)
		}
	}
}

func TestReplanThreshold(t *testing.T) {
	// Plan-time inaccuracy widens the mid-run trigger: known-shaky
	// estimates deviating within their own envelope is not news.
	exact := &Feedback{Derivable: 4, P90Q: 1}
	if got := exact.ReplanThreshold(2); got != 2 {
		t.Errorf("exact replan threshold = %v, want 2", got)
	}
	shaky := &Feedback{Derivable: 4, P90Q: 3}
	if got := shaky.ReplanThreshold(2); got != 6 {
		t.Errorf("shaky replan threshold = %v, want 6", got)
	}
	var nilFB *Feedback
	if got := nilFB.ReplanThreshold(2); got != 2 {
		t.Errorf("nil replan threshold = %v, want base 2", got)
	}
}

func TestTripsReplan(t *testing.T) {
	fb := &Feedback{SEs: []SEReport{
		{Block: 0, Label: "underivable", Actual: 5},
		{Block: 0, Label: "vacuous", Derivable: true, Vacuous: true, QError: 1},
		{Block: 1, Label: "empty-se", Derivable: true, Actual: 0, Estimate: 7, QError: math.Inf(1)},
		{Block: 1, Label: "exact", Derivable: true, Actual: 10, Estimate: 10, QError: 1},
		{Block: 2, Label: "off", Derivable: true, Actual: 30, Estimate: 10, QError: 3},
	}}
	if rep, ok := fb.TripsReplan(2); !ok || rep.Label != "off" {
		t.Fatalf("TripsReplan(2) = %+v, %v; want the q=3 report", rep, ok)
	}
	if _, ok := fb.TripsReplan(4); ok {
		t.Fatal("TripsReplan(4) tripped below threshold")
	}
	// A broken derivation (estimate 0 against rows that exist) always trips.
	fb.SEs = append(fb.SEs, SEReport{Block: 3, Label: "broken", Derivable: true, Actual: 9, QError: math.Inf(1)})
	if rep, ok := fb.TripsReplan(100); !ok || rep.Label != "broken" {
		t.Fatalf("TripsReplan must trip on hard-unbounded report, got %+v, %v", rep, ok)
	}
	var nilFB *Feedback
	if _, ok := nilFB.TripsReplan(2); ok {
		t.Fatal("nil feedback tripped")
	}
}

// TestBuildFeedbackOnRun builds the feedback over a real instrumented run
// and checks structure: deterministic SE order, per-rule aggregation, and
// exact q-errors for the paper's exact derivations.
func TestBuildFeedbackOnRun(t *testing.T) {
	g, cat, db := zipfRetail(t, 5)
	_, res, _, est, _ := pipeline(t, g, cat, db, css.DefaultOptions(), selector.MethodExact)

	actuals := make(map[stats.Target]int64)
	for bi, sp := range res.Spaces {
		for _, se := range sp.SEs {
			card, err := est.CardOf(bi, se)
			if err != nil {
				continue
			}
			actuals[stats.BlockSE(bi, se)] = card
		}
	}
	if len(actuals) == 0 {
		t.Fatal("no actuals derived from fixture")
	}

	fb := BuildFeedback(res, est, actuals)
	if fb.Total != len(actuals) || fb.Derivable != len(actuals) {
		t.Fatalf("feedback %d/%d, want %d/%d", fb.Derivable, fb.Total, len(actuals), len(actuals))
	}
	if fb.MaxQ != 1 || fb.MeanQ != 1 {
		t.Fatalf("actuals fed from the estimator itself must be exact: maxQ %v meanQ %v", fb.MaxQ, fb.MeanQ)
	}
	for i := 1; i < len(fb.SEs); i++ {
		a, b := fb.SEs[i-1], fb.SEs[i]
		if a.Block > b.Block || (a.Block == b.Block && a.Target.Set > b.Target.Set) {
			t.Fatalf("SE order not deterministic at %d: %+v before %+v", i, a.Target, b.Target)
		}
	}
	var n int
	for _, r := range fb.Rules {
		n += r.Count
		if r.MaxQ != 1 {
			t.Errorf("rule %s maxQ %v, want 1", r.Rule, r.MaxQ)
		}
	}
	if n != fb.Derivable {
		t.Errorf("rule counts sum to %d, want %d", n, fb.Derivable)
	}
	out := fb.Render()
	if !strings.Contains(out, "targets derivable") || !strings.Contains(out, "rule accuracy") {
		t.Errorf("render missing sections:\n%s", out)
	}
	if fb.Render() != out {
		t.Error("render not deterministic")
	}
}

// TestBuildFeedbackUnderivable pins the mixed case: an SE target with no
// derivation is reported (not skipped) and drops the calibrated threshold
// story to the remaining derivable ones; a chain point with no derivation
// is silently skipped.
func TestBuildFeedbackUnderivable(t *testing.T) {
	g, cat, db := zipfRetail(t, 5)
	_, res, _, est, _ := pipeline(t, g, cat, db, css.DefaultOptions(), selector.MethodExact)

	full := res.Space(0).Full()
	actuals := map[stats.Target]int64{
		stats.BlockSE(0, full): 10,
		// A chain point outside the statistic universe: skipped silently.
		stats.ChainPoint(0, 0, 99): 5,
	}
	empty := New(res, stats.NewStore())
	fb := BuildFeedback(res, empty, actuals)
	if fb.Total != 1 || fb.Derivable != 0 {
		t.Fatalf("feedback %d/%d, want 0/1 (chain point skipped, SE kept)", fb.Derivable, fb.Total)
	}
	if fb.SEs[0].Derivable {
		t.Fatal("underivable SE marked derivable")
	}
	if !strings.Contains(fb.Render(), "not derivable") {
		t.Fatalf("render must flag underivable targets:\n%s", fb.Render())
	}

	// With the real estimator the same SE is derivable and exact.
	card, err := est.CardOf(0, full)
	if err != nil {
		t.Fatalf("CardOf: %v", err)
	}
	actuals[stats.BlockSE(0, full)] = card
	fb = BuildFeedback(res, est, actuals)
	if fb.Derivable != 1 || fb.MaxQ != 1 {
		t.Fatalf("derivable feedback %d maxQ %v, want 1/1", fb.Derivable, fb.MaxQ)
	}
}

// TestConeFeedbackSkew pins the deterministic forcing knob the adaptive
// tests and -replan-skew use: skewing a block's derived estimates produces
// exactly that q-error, trips TripsReplan past the threshold, and leaves
// other blocks' evidence exact.
func TestConeFeedbackSkew(t *testing.T) {
	g, cat, db := zipfRetail(t, 5)
	_, res, _, est, _ := pipeline(t, g, cat, db, css.DefaultOptions(), selector.MethodExact)

	actuals := make(map[stats.Target]int64)
	for bi, sp := range res.Spaces {
		for _, se := range sp.SEs {
			card, err := est.CardOf(bi, se)
			if err != nil || card == 0 {
				continue
			}
			actuals[stats.BlockSE(bi, se)] = card
		}
	}
	if len(actuals) == 0 {
		t.Fatal("no non-empty actuals derived from fixture")
	}

	fb := ConeFeedback(res, est, actuals, map[int]float64{0: 3})
	for _, r := range fb.SEs {
		if !r.Derivable {
			continue
		}
		want := 1.0
		if r.Block == 0 {
			want = 3
		}
		if math.Abs(r.QError-want) > 0.5 {
			t.Errorf("blk%d %s q-error %v, want ~%v", r.Block, r.Label, r.QError, want)
		}
	}
	rep, ok := fb.TripsReplan(2)
	if !ok || rep.Block != 0 {
		t.Fatalf("skewed block must trip replan: %+v, %v", rep, ok)
	}
	if _, ok := fb.TripsReplan(4); ok {
		t.Fatal("3x skew tripped a 4x threshold")
	}
	// Without skew the same evidence is exact and never trips.
	if rep, ok := BuildFeedback(res, est, actuals).TripsReplan(1); ok {
		t.Fatalf("exact evidence tripped replan: %+v", rep)
	}
}

// TestBuildFeedbackVacuous pins the 0/0 tagging: a derivable target whose
// actual and (skew-zeroed) estimate are both zero is vacuous — counted,
// excluded from the q-error aggregates, and never counted as perfect
// evidence for the calibration.
func TestBuildFeedbackVacuous(t *testing.T) {
	g, cat, db := zipfRetail(t, 5)
	_, res, _, est, _ := pipeline(t, g, cat, db, css.DefaultOptions(), selector.MethodExact)

	full := res.Space(0).Full()
	target := stats.BlockSE(0, full)
	actuals := map[stats.Target]int64{target: 0}
	fb := ConeFeedback(res, est, actuals, map[int]float64{0: 0})
	if fb.Derivable != 1 || fb.Vacuous != 1 {
		t.Fatalf("feedback derivable=%d vacuous=%d, want 1/1", fb.Derivable, fb.Vacuous)
	}
	if !fb.SEs[0].Vacuous || fb.SEs[0].QError != 1 {
		t.Fatalf("vacuous report = %+v", fb.SEs[0])
	}
	if fb.P90Q != 0 || fb.MaxQ != 0 {
		t.Fatalf("vacuous evidence leaked into aggregates: p90 %v max %v", fb.P90Q, fb.MaxQ)
	}
	if got := fb.CalibratedThreshold(0.3); got != 0 {
		t.Fatalf("vacuous-only calibration = %v, want 0 (untested)", got)
	}
	if _, ok := fb.TripsReplan(0); ok {
		t.Fatal("vacuous target tripped replan")
	}

	// An over-predicted empty SE is unbounded-empty, not broken: it keeps
	// the calibrated threshold and never trips a replan.
	fb = BuildFeedback(res, est, actuals)
	if fb.Unbounded != 1 || fb.UnboundedEmpty != 1 {
		t.Fatalf("feedback unbounded=%d empty=%d, want 1/1", fb.Unbounded, fb.UnboundedEmpty)
	}
	if _, ok := fb.TripsReplan(100); ok {
		t.Fatal("empty-SE unbounded target tripped replan")
	}
}
