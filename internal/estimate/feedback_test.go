package estimate

import (
	"math"
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/stats"
)

func TestQError(t *testing.T) {
	cases := []struct {
		act, est int64
		want     float64
	}{
		{100, 100, 1},
		{0, 0, 1},
		{50, 100, 2},
		{100, 50, 2},
		{1, 3, 3},
		{0, 7, math.Inf(1)},
		{7, 0, math.Inf(1)},
	}
	for _, tc := range cases {
		if got := qError(tc.act, tc.est); got != tc.want {
			t.Errorf("qError(%d, %d) = %v, want %v", tc.act, tc.est, got, tc.want)
		}
	}
}

func TestCalibratedThreshold(t *testing.T) {
	// Exact feedback keeps the base threshold; inaccuracy shrinks it;
	// unbounded or absent feedback forces re-optimization on any drift.
	exact := &Feedback{Derivable: 4, Total: 4, MaxQ: 1}
	if got := exact.CalibratedThreshold(0.3); got != 0.3 {
		t.Errorf("exact threshold = %v, want 0.3", got)
	}
	shaky := &Feedback{Derivable: 4, Total: 4, MaxQ: 3}
	if got := shaky.CalibratedThreshold(0.3); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("shaky threshold = %v, want 0.1", got)
	}
	unbounded := &Feedback{Derivable: 4, Total: 4, MaxQ: 1, Unbounded: 1}
	if got := unbounded.CalibratedThreshold(0.3); got != 0 {
		t.Errorf("unbounded threshold = %v, want 0", got)
	}
	var nilFB *Feedback
	if got := nilFB.CalibratedThreshold(0.3); got != 0 {
		t.Errorf("nil feedback threshold = %v, want 0", got)
	}
	none := &Feedback{}
	if got := none.CalibratedThreshold(0.3); got != 0 {
		t.Errorf("underivable feedback threshold = %v, want 0", got)
	}

	d := stats.Drift{MaxRel: 0.2}
	if exact.ShouldReoptimize(d, 0.3) {
		t.Error("0.2 drift under exact 0.3 threshold should not re-optimize")
	}
	if !shaky.ShouldReoptimize(d, 0.3) {
		t.Error("0.2 drift over calibrated 0.1 threshold must re-optimize")
	}
}

// TestBuildFeedbackOnRun builds the feedback over a real instrumented run
// and checks structure: deterministic SE order, per-rule aggregation, and
// exact q-errors for the paper's exact derivations.
func TestBuildFeedbackOnRun(t *testing.T) {
	g, cat, db := zipfRetail(t, 5)
	_, res, _, est, _ := pipeline(t, g, cat, db, css.DefaultOptions(), selector.MethodExact)

	actuals := make(map[stats.Target]int64)
	for bi, sp := range res.Spaces {
		for _, se := range sp.SEs {
			card, err := est.CardOf(bi, se)
			if err != nil {
				continue
			}
			actuals[stats.BlockSE(bi, se)] = card
		}
	}
	if len(actuals) == 0 {
		t.Fatal("no actuals derived from fixture")
	}

	fb := BuildFeedback(res, est, actuals)
	if fb.Total != len(actuals) || fb.Derivable != len(actuals) {
		t.Fatalf("feedback %d/%d, want %d/%d", fb.Derivable, fb.Total, len(actuals), len(actuals))
	}
	if fb.MaxQ != 1 || fb.MeanQ != 1 {
		t.Fatalf("actuals fed from the estimator itself must be exact: maxQ %v meanQ %v", fb.MaxQ, fb.MeanQ)
	}
	for i := 1; i < len(fb.SEs); i++ {
		a, b := fb.SEs[i-1], fb.SEs[i]
		if a.Block > b.Block || (a.Block == b.Block && a.Target.Set > b.Target.Set) {
			t.Fatalf("SE order not deterministic at %d: %+v before %+v", i, a.Target, b.Target)
		}
	}
	var n int
	for _, r := range fb.Rules {
		n += r.Count
		if r.MaxQ != 1 {
			t.Errorf("rule %s maxQ %v, want 1", r.Rule, r.MaxQ)
		}
	}
	if n != fb.Derivable {
		t.Errorf("rule counts sum to %d, want %d", n, fb.Derivable)
	}
	out := fb.Render()
	if !strings.Contains(out, "targets derivable") || !strings.Contains(out, "rule accuracy") {
		t.Errorf("render missing sections:\n%s", out)
	}
	if fb.Render() != out {
		t.Error("render not deterministic")
	}
}

// TestBuildFeedbackUnderivable pins the mixed case: an SE target with no
// derivation is reported (not skipped) and drops the calibrated threshold
// story to the remaining derivable ones; a chain point with no derivation
// is silently skipped.
func TestBuildFeedbackUnderivable(t *testing.T) {
	g, cat, db := zipfRetail(t, 5)
	_, res, _, est, _ := pipeline(t, g, cat, db, css.DefaultOptions(), selector.MethodExact)

	full := res.Space(0).Full()
	actuals := map[stats.Target]int64{
		stats.BlockSE(0, full): 10,
		// A chain point outside the statistic universe: skipped silently.
		stats.ChainPoint(0, 0, 99): 5,
	}
	empty := New(res, stats.NewStore())
	fb := BuildFeedback(res, empty, actuals)
	if fb.Total != 1 || fb.Derivable != 0 {
		t.Fatalf("feedback %d/%d, want 0/1 (chain point skipped, SE kept)", fb.Derivable, fb.Total)
	}
	if fb.SEs[0].Derivable {
		t.Fatal("underivable SE marked derivable")
	}
	if !strings.Contains(fb.Render(), "not derivable") {
		t.Fatalf("render must flag underivable targets:\n%s", fb.Render())
	}

	// With the real estimator the same SE is derivable and exact.
	card, err := est.CardOf(0, full)
	if err != nil {
		t.Fatalf("CardOf: %v", err)
	}
	actuals[stats.BlockSE(0, full)] = card
	fb = BuildFeedback(res, est, actuals)
	if fb.Derivable != 1 || fb.MaxQ != 1 {
		t.Fatalf("derivable feedback %d maxQ %v, want 1/1", fb.Derivable, fb.MaxQ)
	}
}
