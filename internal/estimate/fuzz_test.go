package estimate

import (
	"fmt"
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/wftest"
)

// TestExactnessFuzz runs the complete pipeline over randomized workflows
// and asserts the core soundness property on every one: all SE
// cardinalities derived from one instrumented run match brute force.
func TestExactnessFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz campaign skipped in -short mode")
	}
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g, cat, db := wftest.Generate(seed, wftest.Options{})
			method := selector.MethodExact
			if seed%3 == 0 {
				method = selector.MethodGreedy // exercise both solvers
			}
			cssOpt := css.DefaultOptions()
			if seed%4 == 0 {
				cssOpt.UnionDivision = false
			}
			an, res, _, est, run := pipeline(t, g, cat, db, cssOpt, method)
			o := &oracle{t: t, an: an, db: db, reg: engine.DefaultRegistry(), out: run.BlockOut}
			for bi, sp := range res.Spaces {
				blk := an.Blocks[bi]
				for _, se := range sp.SEs {
					want := o.seCard(blk, se)
					got, err := est.CardOf(bi, se)
					if err != nil {
						t.Fatalf("CardOf(block %d, %s): %v", bi, se.Label(blk), err)
					}
					if got != want {
						t.Errorf("block %d SE %s: estimated %d, truth %d", bi, se.Label(blk), got, want)
					}
				}
			}
		})
	}
}
