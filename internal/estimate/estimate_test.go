package estimate

import (
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// oracle materializes SE ground truth independently of the engine: it
// applies input chains and then nested-loop joins, so any agreement with
// the estimator is meaningful.
type oracle struct {
	t   *testing.T
	an  *workflow.Analysis
	db  engine.DB
	reg engine.Registry
	out map[int]*data.Table // block outputs from a real run, for boundaries
}

func (o *oracle) input(blk *workflow.Block, i int) *data.Table {
	in := blk.Inputs[i]
	var tbl *data.Table
	switch {
	case in.SourceRel != "":
		tbl = o.db[in.SourceRel]
	case in.FromBlock >= 0:
		tbl = o.out[in.FromBlock]
	}
	if tbl == nil {
		o.t.Fatalf("oracle: input %d unresolvable", i)
	}
	for _, op := range in.Ops {
		tbl = o.applyOp(tbl, op)
	}
	return tbl
}

func (o *oracle) applyOp(tbl *data.Table, op *workflow.Node) *data.Table {
	switch op.Kind {
	case workflow.KindSelect:
		c := tbl.Col(op.Pred.Attr)
		res := &data.Table{Rel: tbl.Rel, Attrs: tbl.Attrs}
		for _, r := range tbl.Rows {
			if op.Pred.Matches(r[c]) {
				res.Rows = append(res.Rows, r)
			}
		}
		return res
	case workflow.KindProject:
		cols := make([]int, len(op.Cols))
		for i, a := range op.Cols {
			cols[i] = tbl.Col(a)
		}
		res := &data.Table{Rel: tbl.Rel, Attrs: append([]workflow.Attr(nil), op.Cols...)}
		for _, r := range tbl.Rows {
			row := make(data.Row, len(cols))
			for i, c := range cols {
				row[i] = r[c]
			}
			res.Rows = append(res.Rows, row)
		}
		return res
	case workflow.KindTransform:
		fn := o.reg[op.Transform.Fn]
		ins := make([]int, len(op.Transform.Ins))
		for i, a := range op.Transform.Ins {
			ins[i] = tbl.Col(a)
		}
		res := &data.Table{Rel: tbl.Rel, Attrs: append(append([]workflow.Attr(nil), tbl.Attrs...), op.Transform.Out)}
		for _, r := range tbl.Rows {
			buf := make([]int64, len(ins))
			for i, c := range ins {
				buf[i] = r[c]
			}
			res.Rows = append(res.Rows, append(append(data.Row{}, r...), fn(buf)))
		}
		return res
	default:
		o.t.Fatalf("oracle: unsupported chain op %v", op.Kind)
		return nil
	}
}

// seCard joins the SE's inputs with nested loops following the block's join
// edges and returns the result cardinality.
func (o *oracle) seCard(blk *workflow.Block, se expr.Set) int64 {
	members := se.Members()
	cur := o.input(blk, members[0])
	joined := expr.NewSet(members[0])
	for joined != se {
		progress := false
		for _, e := range blk.Joins {
			var next int
			switch {
			case joined.Has(e.LeftInput) && se.Has(e.RightInput) && !joined.Has(e.RightInput):
				next = e.RightInput
			case joined.Has(e.RightInput) && se.Has(e.LeftInput) && !joined.Has(e.LeftInput):
				next = e.LeftInput
			default:
				continue
			}
			nt := o.input(blk, next)
			la, ra := e.LeftAttr, e.RightAttr
			if cur.Col(la) < 0 {
				la, ra = ra, la
			}
			lc, rc := cur.Col(la), nt.Col(ra)
			if lc < 0 || rc < 0 {
				o.t.Fatalf("oracle: join attrs not found: %v/%v", la, ra)
			}
			res := &data.Table{Rel: "x", Attrs: append(append([]workflow.Attr(nil), cur.Attrs...), nt.Attrs...)}
			for _, l := range cur.Rows {
				for _, r := range nt.Rows {
					if l[lc] == r[rc] {
						res.Rows = append(res.Rows, append(append(data.Row{}, l...), r...))
					}
				}
			}
			cur = res
			joined = joined.Add(next)
			progress = true
		}
		if !progress {
			o.t.Fatalf("oracle: SE %v not connected", se)
		}
	}
	return cur.Card()
}

// pipeline runs the full framework: analyze, generate CSS, select optimal
// statistics, execute the instrumented initial plan, and return everything
// needed to estimate.
func pipeline(t *testing.T, g *workflow.Graph, cat *workflow.Catalog, db engine.DB, cssOpt css.Options, method selector.Method) (*workflow.Analysis, *css.Result, *selector.Selection, *Estimator, *engine.Result) {
	t.Helper()
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, cssOpt)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	sel, err := selector.Select(res, coster, selector.Options{Method: method})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	eng := engine.New(an, db, nil)
	run, err := eng.RunObserved(res, sel.Observe)
	if err != nil {
		t.Fatalf("RunObserved: %v", err)
	}
	return an, res, sel, New(res, run.Observed), run
}

// zipfRetail builds the retail workflow over skewed synthetic data.
func zipfRetail(t *testing.T, seed int64) (*workflow.Graph, *workflow.Catalog, engine.DB) {
	t.Helper()
	specs := []data.TableSpec{
		{Rel: "Orders", Card: 2000, Columns: []data.ColumnSpec{
			{Name: "oid", Serial: true},
			{Name: "pid", Domain: 60, Skew: 1.4},
			{Name: "cid", Domain: 40, Skew: 1.6},
		}},
		{Rel: "Product", Card: 80, Columns: []data.ColumnSpec{
			{Name: "pid", Domain: 60, Skew: 1.2},
			{Name: "price", Domain: 500},
		}},
		{Rel: "Customer", Card: 50, Columns: []data.ColumnSpec{
			{Name: "cid", Domain: 40, Skew: 1.1},
			{Name: "region", Domain: 10},
		}},
	}
	db := engine.DB{}
	cat := &workflow.Catalog{}
	for i, spec := range specs {
		tbl := data.Generate(spec, seed+int64(i))
		db[spec.Rel] = tbl
		cat.Relations = append(cat.Relations, data.CatalogEntry(tbl, spec))
	}
	b := workflow.NewBuilder("retail")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	j2 := b.Join(j1, c, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	b.Sink(j2, "dw")
	return b.Graph(), cat, db
}

// TestExactnessRetail is the paper's core soundness claim: the statistics
// chosen by the framework and observed in ONE run of the initial plan
// suffice to compute the cardinality of EVERY sub-expression exactly.
func TestExactnessRetail(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  css.Options
	}{
		{"plain", css.Options{}},
		{"union-division", css.Options{UnionDivision: true}},
		{"all", css.DefaultOptions()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, cat, db := zipfRetail(t, 42)
			an, res, _, est, run := pipeline(t, g, cat, db, tc.opt, selector.MethodExact)
			o := &oracle{t: t, an: an, db: db, reg: engine.DefaultRegistry(), out: run.BlockOut}
			for bi, sp := range res.Spaces {
				blk := an.Blocks[bi]
				for _, se := range sp.SEs {
					want := o.seCard(blk, se)
					got, err := est.CardOf(bi, se)
					if err != nil {
						t.Fatalf("CardOf(block %d, %s): %v", bi, se.Label(blk), err)
					}
					if got != want {
						t.Errorf("block %d SE %s: estimated %d, truth %d", bi, se.Label(blk), got, want)
					}
				}
			}
		})
	}
}

// TestExactnessWithChains adds selection and transform chains: S1/S2/U1/U2
// must hold through pushed-down operators.
func TestExactnessWithChains(t *testing.T) {
	g0, cat, db := zipfRetail(t, 7)
	_ = g0
	b := workflow.NewBuilder("chains")
	o := b.Source("Orders")
	f := b.Select(o, workflow.Predicate{Attr: workflow.Attr{Rel: "Orders", Col: "pid"}, Op: workflow.CmpLe, Const: 30})
	x := b.Transform(f, "bucket10", workflow.Attr{Rel: "X", Col: "bkt"}, workflow.Attr{Rel: "Orders", Col: "oid"})
	p := b.Source("Product")
	fp := b.Select(p, workflow.Predicate{Attr: workflow.Attr{Rel: "Product", Col: "price"}, Op: workflow.CmpGt, Const: 100})
	c := b.Source("Customer")
	j1 := b.Join(x, fp, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	j2 := b.Join(j1, c, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	b.Sink(j2, "dw")
	an, res, _, est, run := pipeline(t, b.Graph(), cat, db, css.DefaultOptions(), selector.MethodExact)
	o2 := &oracle{t: t, an: an, db: db, reg: engine.DefaultRegistry(), out: run.BlockOut}
	for bi, sp := range res.Spaces {
		blk := an.Blocks[bi]
		for _, se := range sp.SEs {
			want := o2.seCard(blk, se)
			got, err := est.CardOf(bi, se)
			if err != nil {
				t.Fatalf("CardOf(%s): %v", se.Label(blk), err)
			}
			if got != want {
				t.Errorf("SE %s: estimated %d, truth %d", se.Label(blk), got, want)
			}
		}
	}
}

// TestExactnessMultiBlock exercises the cross-block rules: a group-by
// boundary splits the flow; downstream estimates must still be exact.
func TestExactnessMultiBlock(t *testing.T) {
	_, cat, db := zipfRetail(t, 13)
	b := workflow.NewBuilder("multiblock")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	gby := b.GroupBy(j1, workflow.Attr{Rel: "Orders", Col: "cid"})
	j2 := b.Join(gby, c, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	b.Sink(j2, "dw")
	an, res, _, est, run := pipeline(t, b.Graph(), cat, db, css.DefaultOptions(), selector.MethodExact)
	if len(an.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(an.Blocks))
	}
	o2 := &oracle{t: t, an: an, db: db, reg: engine.DefaultRegistry(), out: run.BlockOut}
	for bi, sp := range res.Spaces {
		blk := an.Blocks[bi]
		for _, se := range sp.SEs {
			want := o2.seCard(blk, se)
			got, err := est.CardOf(bi, se)
			if err != nil {
				t.Fatalf("CardOf(block %d, %s): %v", bi, se.Label(blk), err)
			}
			if got != want {
				t.Errorf("block %d SE %s: estimated %d, truth %d", bi, se.Label(blk), got, want)
			}
		}
	}
}

// TestGreedySelectionAlsoSuffices checks the soundness of the greedy
// heuristic's selection, not just the exact one.
func TestGreedySelectionAlsoSuffices(t *testing.T) {
	g, cat, db := zipfRetail(t, 99)
	an, res, _, est, run := pipeline(t, g, cat, db, css.DefaultOptions(), selector.MethodGreedy)
	o := &oracle{t: t, an: an, db: db, reg: engine.DefaultRegistry(), out: run.BlockOut}
	for bi, sp := range res.Spaces {
		blk := an.Blocks[bi]
		for _, se := range sp.SEs {
			want := o.seCard(blk, se)
			got, err := est.CardOf(bi, se)
			if err != nil {
				t.Fatalf("CardOf(%s): %v", se.Label(blk), err)
			}
			if got != want {
				t.Errorf("SE %s: estimated %d, truth %d", se.Label(blk), got, want)
			}
		}
	}
}

// TestUnderivableWithoutObservation: estimating from an empty store fails
// cleanly.
func TestUnderivableWithoutObservation(t *testing.T) {
	g, cat, _ := zipfRetail(t, 5)
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	est := New(res, stats.NewStore())
	if _, err := est.CardOf(0, res.Space(0).Full()); err == nil {
		t.Fatal("estimating from empty store: want error")
	}
}

// TestSizeOfPrecisionBoundary verifies SizeOf refuses cardinalities beyond
// float64's exact-integer range (2^53) instead of silently rounding them
// into the cost arithmetic.
func TestSizeOfPrecisionBoundary(t *testing.T) {
	g, cat, _ := zipfRetail(t, 5)
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	target := stats.BlockSE(0, res.Space(0).Full())

	put := func(card int64) *Estimator {
		st := stats.NewStore()
		st.PutScalar(stats.NewCard(target), card)
		return New(res, st)
	}
	if got, ok := put(stats.MaxExactInt64).SizeOf(target); !ok || got != float64(stats.MaxExactInt64) {
		t.Fatalf("SizeOf(2^53) = %v, %v; want exact value", got, ok)
	}
	if _, ok := put(stats.MaxExactInt64 + 1).SizeOf(target); ok {
		t.Fatal("SizeOf(2^53+1): want unavailable, got a rounded size")
	}
}

func TestExplainDerivationTree(t *testing.T) {
	g, cat, db := zipfRetail(t, 21)
	an, res, _, est, _ := pipeline(t, g, cat, db, css.DefaultOptions(), selector.MethodExact)
	blk := an.Blocks[0]
	sp := res.Space(0)
	// Explain the full SE's cardinality.
	full := stats.NewCard(stats.BlockSE(0, sp.Full()))
	ex, err := est.Explain(full)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.Value.Scalar <= 0 {
		t.Fatalf("explained value = %d", ex.Value.Scalar)
	}
	// An observed statistic explains itself with no inputs.
	for _, leaf := range ex.Leaves() {
		lex, err := est.Explain(leaf)
		if err != nil {
			t.Fatalf("Explain(leaf): %v", err)
		}
		if lex.Rule != "observed" || len(lex.Inputs) != 0 {
			t.Fatalf("leaf explanation wrong: rule=%s inputs=%d", lex.Rule, len(lex.Inputs))
		}
	}
	// Rendering mentions the SE label and the rule.
	out := ex.Render(blk)
	if !strings.Contains(out, "Orders") {
		t.Fatalf("render lacks input names:\n%s", out)
	}
	if ex.Depth() < 1 {
		t.Fatal("depth must be >= 1")
	}
	// An unobservable SE's explanation bottoms out in observed leaves only.
	var oIdx, cIdx int
	for i, in := range blk.Inputs {
		switch in.SourceRel {
		case "Orders":
			oIdx = i
		case "Customer":
			cIdx = i
		}
	}
	oc := stats.NewCard(stats.BlockSE(0, expr.NewSet(oIdx, cIdx)))
	ex2, err := est.Explain(oc)
	if err != nil {
		t.Fatalf("Explain(OC): %v", err)
	}
	if ex2.Rule == "observed" {
		t.Fatal("|O⋈C| cannot be observed under the initial plan")
	}
	if len(ex2.Leaves()) == 0 {
		t.Fatal("derivation has no observed leaves")
	}
}

func TestCoverage(t *testing.T) {
	g, cat, db := zipfRetail(t, 3)
	_, res, _, est, _ := pipeline(t, g, cat, db, css.DefaultOptions(), selector.MethodExact)
	d, total := Coverage(res, est.Store)
	if total == 0 || d != total {
		t.Fatalf("coverage %d/%d, want full", d, total)
	}
	// An empty store covers nothing.
	d0, total0 := Coverage(res, stats.NewStore())
	if d0 != 0 || total0 != total {
		t.Fatalf("empty-store coverage %d/%d", d0, total0)
	}
}
