package estimate

import (
	"fmt"
	"strings"

	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Explanation is a derivation tree: how a statistic's value was obtained —
// directly observed, or computed by a rule from other statistics.
type Explanation struct {
	// Stat is the statistic being explained.
	Stat stats.Stat
	// Value is its (scalar) value; for histograms the bucket count and
	// total are rendered instead.
	Value *stats.Value
	// Rule is the rule that produced the value, or "observed" for
	// statistics taken directly from the store.
	Rule string
	// Inputs are the explanations of the rule's inputs (empty for observed
	// statistics).
	Inputs []*Explanation
}

// Explain computes (or recalls) the value of a statistic and returns its
// full derivation tree. The estimator's memoization ensures shared
// sub-derivations are evaluated once even though they may be rendered
// multiple times.
func (e *Estimator) Explain(s stats.Stat) (*Explanation, error) {
	// Ensure the value is computed and memoized.
	v, err := e.Value(s)
	if err != nil {
		return nil, err
	}
	if e.Store.Has(s) {
		return &Explanation{Stat: s, Value: v, Rule: "observed"}, nil
	}
	// The approximate tier: the value came from the observed sketch
	// sibling, so explain it as the A1/A2 conversion over an observed leaf.
	if av, ok := stats.ApproxVariant(s); ok && e.Store.Has(av) {
		rule := "A1"
		if av.Kind == stats.CMHist {
			rule = "A2"
		}
		leaf, err := e.fromStore(av)
		if err != nil {
			return nil, err
		}
		return &Explanation{
			Stat: s, Value: v, Rule: rule,
			Inputs: []*Explanation{{Stat: av, Value: leaf, Rule: "observed"}},
		}, nil
	}
	// Find the first evaluable CSS — the same order Value used, so the
	// explanation matches the computation.
	for _, c := range e.Res.CSS[s.Key()] {
		if _, err := e.eval(s, c); err != nil {
			continue
		}
		ex := &Explanation{Stat: s, Value: v, Rule: c.Rule}
		for _, in := range c.Inputs {
			child, err := e.Explain(in)
			if err != nil {
				return nil, err
			}
			ex.Inputs = append(ex.Inputs, child)
		}
		return ex, nil
	}
	return nil, fmt.Errorf("estimate: no evaluable derivation for %v", s.Key())
}

// Render formats the derivation tree with one node per line, indenting
// children, using the block's input names.
func (ex *Explanation) Render(blk *workflow.Block) string {
	var sb strings.Builder
	ex.render(&sb, blk, 0)
	return sb.String()
}

func (ex *Explanation) render(sb *strings.Builder, blk *workflow.Block, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(ex.Stat.Label(blk))
	sb.WriteString(" = ")
	if ex.Value.Hist != nil {
		fmt.Fprintf(sb, "histogram[%d buckets, total %d]", ex.Value.Hist.Buckets(), ex.Value.Hist.Total())
	} else {
		fmt.Fprintf(sb, "%d", ex.Value.Scalar)
	}
	if ex.Rule == "observed" {
		sb.WriteString("   (observed)")
	} else {
		fmt.Fprintf(sb, "   (rule %s)", ex.Rule)
	}
	sb.WriteString("\n")
	for _, in := range ex.Inputs {
		in.render(sb, blk, depth+1)
	}
}

// Leaves returns the observed statistics the derivation bottoms out in,
// de-duplicated, in first-encountered order.
func (ex *Explanation) Leaves() []stats.Stat {
	seen := make(map[stats.Key]bool)
	var out []stats.Stat
	var walk func(*Explanation)
	walk = func(n *Explanation) {
		if n.Rule == "observed" {
			if k := n.Stat.Key(); !seen[k] {
				seen[k] = true
				out = append(out, n.Stat)
			}
			return
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(ex)
	return out
}

// Depth returns the height of the derivation tree (an observed statistic
// has depth 1).
func (ex *Explanation) Depth() int {
	max := 0
	for _, in := range ex.Inputs {
		if d := in.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}
