// Package estimate evaluates candidate statistics sets numerically: given
// the statistics observed during an instrumented run (or supplied by source
// systems), it derives the value of any other statistic by recursively
// applying the paper's rules — dot products for join cardinalities (J1),
// join projections (J2/J3), the union–division algebra (J4/J5), selection
// and projection arithmetic (S/P/U), group-by rules (G1/G2) and the
// identity rules (I1/I2). With exact per-value histograms every derived
// cardinality is exact, which is what lets the optimizer cost every
// reordering from a single instrumented execution.
package estimate

import (
	"fmt"
	"math"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Estimator derives statistic values from an observed store.
type Estimator struct {
	Res   *css.Result
	Store *stats.Store

	memo       map[stats.Key]*stats.Value
	inProgress map[stats.Key]bool
}

// New returns an estimator over the given CSS result and observation store.
func New(res *css.Result, store *stats.Store) *Estimator {
	return &Estimator{
		Res:        res,
		Store:      store,
		memo:       make(map[stats.Key]*stats.Value),
		inProgress: make(map[stats.Key]bool),
	}
}

// SizeOf implements costmodel.Sizes: target sizes from this run's derived
// statistics, realizing the paper's Section 5.4 "sizes from the previous
// runs" for the CPU cost metric of subsequent cycles.
func (e *Estimator) SizeOf(t stats.Target) (float64, bool) {
	v, err := e.Value(stats.NewCard(t))
	if err != nil {
		return 0, false
	}
	// Cardinalities above 2^53 would round silently in the float64 cost
	// arithmetic; report them as unavailable rather than subtly wrong.
	f, err := stats.Float64FromInt64(v.Scalar)
	if err != nil {
		return 0, false
	}
	return f, true
}

// CardOf returns the (derived) cardinality of an SE.
func (e *Estimator) CardOf(block int, se expr.Set) (int64, error) {
	v, err := e.Value(stats.NewCard(stats.BlockSE(block, se)))
	if err != nil {
		return 0, err
	}
	return v.Scalar, nil
}

// Value computes the value of a statistic: directly from the store when
// observed, otherwise through the first evaluable candidate statistics set.
func (e *Estimator) Value(s stats.Stat) (*stats.Value, error) {
	k := s.Key()
	if v, ok := e.memo[k]; ok {
		if v == nil {
			return nil, fmt.Errorf("estimate: statistic %v not derivable", k)
		}
		return v, nil
	}
	if e.inProgress[k] {
		return nil, fmt.Errorf("estimate: cyclic derivation at %v", k)
	}
	if e.Store.Has(s) {
		v, err := e.fromStore(s)
		if err != nil {
			return nil, err
		}
		e.memo[k] = v
		return v, nil
	}
	// Approximate tier (rules A1/A2): an unobserved exact statistic whose
	// sketch sibling was observed takes the sketch's estimate. The value is
	// tagged Approx so every derivation built on it inherits the tag.
	if av, ok := stats.ApproxVariant(s); ok && e.Store.Has(av) {
		v, err := e.fromSketch(s, av)
		if err != nil {
			return nil, err
		}
		e.memo[k] = v
		return v, nil
	}
	e.inProgress[k] = true
	defer delete(e.inProgress, k)
	var firstErr error
	for _, c := range e.Res.CSS[k] {
		v, err := e.eval(s, c)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		v.Approx = v.Approx || e.anyApproxInput(c)
		e.memo[k] = v
		return v, nil
	}
	e.memo[k] = nil
	if firstErr != nil {
		return nil, fmt.Errorf("estimate: statistic %v not derivable: %w", k, firstErr)
	}
	return nil, fmt.Errorf("estimate: statistic %v not observed and has no candidate statistics set", k)
}

func (e *Estimator) fromStore(s stats.Stat) (*stats.Value, error) {
	switch s.Kind.Shape() {
	case stats.ShapeHist:
		h, err := e.Store.Hist(s)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Hist: h}, nil
	case stats.ShapeHLL:
		h, err := e.Store.HLLSketch(s)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Scalar: h.Estimate(), HLL: h, Approx: true}, nil
	case stats.ShapeCM:
		cm, err := e.Store.CMSketch(s)
		if err != nil {
			return nil, err
		}
		h, err := cmHistogram(cm, s.Attrs)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Hist: h, CM: cm, Approx: true}, nil
	}
	v, err := e.Store.Scalar(s)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Scalar: v}, nil
}

// fromSketch materializes an exact statistic from its observed sketch
// sibling. A distinct count takes the HyperLogLog estimate (rule A1); a
// histogram takes the count-min's bucketized distribution expanded at
// bucket midpoints, carrying the sketch itself so join rules can use the
// tighter sketch-level dot product (rule A2).
func (e *Estimator) fromSketch(s, av stats.Stat) (*stats.Value, error) {
	v, err := e.fromStore(av)
	if err != nil {
		return nil, err
	}
	out := *v
	out.Stat = s
	return &out, nil
}

// anyApproxInput reports whether any of the CSS's (memoized) inputs was
// derived from the approximate tier.
func (e *Estimator) anyApproxInput(c stats.CSS) bool {
	for _, in := range c.Inputs {
		if v := e.memo[in.Key()]; v != nil && v.Approx {
			return true
		}
	}
	return false
}

// cmHistogram expands a count-min sketch into a per-value histogram with
// each bucket's estimated mass placed at the bucket midpoint, so the exact
// rule algebra (marginals, predicate filters, joins) composes over it.
func cmHistogram(cm *stats.CMH, attrs []workflow.Attr) (*stats.Histogram, error) {
	if len(attrs) != 1 {
		return nil, fmt.Errorf("estimate: cm-hist over %d attributes", len(attrs))
	}
	h := stats.NewHistogram(attrs...)
	for b := 0; b < cm.Spec.N; b++ {
		f := cm.BucketEstimate(b)
		if f <= 0 {
			continue
		}
		if err := h.Inc([]int64{specMidpoint(cm.Spec, b)}, f); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// specMidpoint returns the representative value a bucket's mass is placed
// at. It must land inside its own bucket — Spec.Bucket(specMidpoint(spec,
// b)) == b — or snapping a midpoint-expanded histogram back onto the grid
// would shift mass across buckets. Truncating (b+0.5)·width can land one
// value outside when the width is barely above one, so the result walks
// back inside (at most a step or two of float error).
func specMidpoint(spec stats.BucketSpec, b int) int64 {
	mid := spec.Lo + int64((float64(b)+0.5)*spec.Width())
	if mid > spec.Hi {
		mid = spec.Hi
	}
	if mid < spec.Lo {
		mid = spec.Lo
	}
	for spec.Bucket(mid) > b && mid > spec.Lo {
		mid--
	}
	for spec.Bucket(mid) < b && mid < spec.Hi {
		mid++
	}
	return mid
}

// bucketRange returns the inclusive integer value range covered by bucket b
// (the analytical bounds corrected for float truncation, mirroring
// specMidpoint's self-consistency guarantee).
func bucketRange(spec stats.BucketSpec, b int) (lo, hi int64) {
	w := spec.Width()
	lo = spec.Lo + int64(math.Ceil(float64(b)*w))
	hi = spec.Lo + int64(math.Ceil(float64(b+1)*w)) - 1
	if lo < spec.Lo {
		lo = spec.Lo
	}
	if hi > spec.Hi {
		hi = spec.Hi
	}
	for lo > spec.Lo && spec.Bucket(lo-1) == b {
		lo--
	}
	for lo < spec.Hi && spec.Bucket(lo) != b {
		lo++
	}
	for hi < spec.Hi && spec.Bucket(hi+1) == b {
		hi++
	}
	for hi > spec.Lo && spec.Bucket(hi) != b {
		hi--
	}
	return lo, hi
}

// gridOf returns the count-min bucket layout carried by any of the values,
// if one is sketch-backed. The zip rules (J2-J5, R1) match histogram
// buckets by value, so whenever one input is a midpoint-expanded sketch the
// other side must be snapped onto the same grid first — real data values
// never equal bucket midpoints, and an unaligned zip silently produces
// empty intersections or fails division.
func gridOf(vs ...*stats.Value) (stats.BucketSpec, bool) {
	for _, v := range vs {
		if v != nil && v.CM != nil {
			return v.CM.Spec, true
		}
	}
	return stats.BucketSpec{}, false
}

// snapAttr re-buckets one attribute coordinate of a histogram onto the
// grid: every value collapses to its bucket's midpoint, merging mass.
// Snapping an already-midpoint-expanded histogram is the identity.
func snapAttr(h *stats.Histogram, a workflow.Attr, spec stats.BucketSpec) (*stats.Histogram, error) {
	pos := attrPos(h.Attrs, a)
	if pos < 0 {
		return nil, fmt.Errorf("estimate: snap attribute %v missing from histogram", a)
	}
	out := stats.NewHistogram(h.Attrs...)
	var err error
	h.Each(func(vals []int64, f int64) {
		proj := append([]int64(nil), vals...)
		proj[pos] = specMidpoint(spec, spec.Bucket(vals[pos]))
		if e2 := out.Inc(proj, f); e2 != nil && err == nil {
			err = e2
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// approxDivide is the union–division for sketch-backed inputs: hO's
// buckets divide by hK's frequency at the matching join value (both sides
// already snapped onto the same grid), rounding the quotient instead of
// requiring the exact divisibility stats.Divide enforces — sketch
// estimates are never exactly divisible. A dividend bucket with no
// denominator partner divides by one: the super-SE's join values come from
// the extra relation by construction, so a zero there is bucketization
// noise, and dropping the mass would understate the cardinality.
func approxDivide(hO, hK *stats.Histogram, join workflow.Attr) (*stats.Histogram, error) {
	jPos := attrPos(hO.Attrs, join)
	if jPos < 0 {
		return nil, fmt.Errorf("estimate: join attribute %v missing from dividend", join)
	}
	out := stats.NewHistogram(hO.Attrs...)
	var err error
	hO.Each(func(vals []int64, f int64) {
		d := hK.Freq(vals[jPos])
		if d < 1 {
			d = 1
		}
		q := int64(math.Round(float64(f) / float64(d)))
		if q == 0 {
			return
		}
		if e2 := out.Inc(vals, q); e2 != nil && err == nil {
			err = e2
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// histInput evaluates input idx of the CSS as a histogram marginalized down
// to the wanted attributes (which absorbs I2-substituted supersets).
func (e *Estimator) histInput(c stats.CSS, idx int, want []workflow.Attr) (*stats.Histogram, error) {
	v, err := e.Value(c.Inputs[idx])
	if err != nil {
		return nil, err
	}
	if v.Hist == nil {
		return nil, fmt.Errorf("estimate: CSS input %d is not a histogram", idx)
	}
	if workflow.AttrsString(v.Hist.Attrs) == workflow.AttrsString(want) {
		return v.Hist, nil
	}
	return v.Hist.Marginal(want...)
}

func (e *Estimator) scalarInput(c stats.CSS, idx int) (int64, error) {
	v, err := e.Value(c.Inputs[idx])
	if err != nil {
		return 0, err
	}
	if v.Hist != nil {
		return 0, fmt.Errorf("estimate: CSS input %d is a histogram, want scalar", idx)
	}
	return v.Scalar, nil
}

// eval evaluates one CSS according to its rule.
func (e *Estimator) eval(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	switch c.Rule {
	case "J1":
		return e.evalJ1(s, c)
	case "J2", "J3":
		return e.evalJoinHist(s, c)
	case "J4":
		return e.evalJ4(s, c)
	case "J5":
		return e.evalJ5(s, c)
	case "R1":
		return e.evalR1(s, c)
	case "FK", "P1", "U1":
		v, err := e.scalarInput(c, 0)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Scalar: v}, nil
	case "P2", "U2", "I2":
		v, err := e.Value(c.Inputs[0])
		if err != nil {
			return nil, err
		}
		h, err := e.histInput(c, 0, s.Attrs)
		if err != nil {
			return nil, err
		}
		out := &stats.Value{Stat: s, Hist: h}
		// An identity marginal of a sketch-backed distribution keeps the
		// grid, so downstream zip rules still see the count-min layout.
		if v.CM != nil && h == v.Hist {
			out.CM = v.CM
		}
		return out, nil
	case "B0":
		return e.evalBoundaryCopy(s, c)
	case "S1":
		return e.evalS1(s, c)
	case "S2":
		return e.evalS2(s, c)
	case "G1":
		v, err := e.scalarInput(c, 0)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Scalar: v}, nil
	case "G2":
		return e.evalG2(s, c)
	case "D1":
		v, err := e.Value(c.Inputs[0])
		if err != nil {
			return nil, err
		}
		if v.Hist == nil {
			return nil, fmt.Errorf("estimate: D1 input is not a histogram")
		}
		return &stats.Value{Stat: s, Scalar: int64(v.Hist.Buckets())}, nil
	case "I1":
		v, err := e.Value(c.Inputs[0])
		if err != nil {
			return nil, err
		}
		if v.Hist == nil {
			return nil, fmt.Errorf("estimate: I1 input is not a histogram")
		}
		return &stats.Value{Stat: s, Scalar: v.Hist.Total()}, nil
	default:
		return nil, fmt.Errorf("estimate: unknown rule %q", c.Rule)
	}
}

// evalJ1 computes |L ⋈ R| as the dot product of the join-column
// distributions. When a side is backed by a count-min sketch the dot
// product runs at sketch level: two sketches over the same bucket layout
// multiply directly, and a sketch against an exact histogram multiplies
// against the histogram bucketized to the sketch's layout — both tighter
// than going through the midpoint expansion.
func (e *Estimator) evalJ1(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	a := []workflow.Attr{c.Join}
	vL, err := e.Value(c.Inputs[0])
	if err != nil {
		return nil, err
	}
	vR, err := e.Value(c.Inputs[1])
	if err != nil {
		return nil, err
	}
	if vL.CM != nil || vR.CM != nil {
		card, err := approxJoinCard(vL, vR, a)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Scalar: card, Approx: true}, nil
	}
	hL, err := e.histInput(c, 0, a)
	if err != nil {
		return nil, err
	}
	hR, err := e.histInput(c, 1, a)
	if err != nil {
		return nil, err
	}
	card, err := stats.DotProduct(hL, hR)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Scalar: card}, nil
}

// approxJoinCard is the sketch-level J1 dot product.
func approxJoinCard(vL, vR *stats.Value, join []workflow.Attr) (int64, error) {
	if vL.CM != nil && vR.CM != nil && vL.CM.Spec == vR.CM.Spec {
		f, err := stats.CMDotProduct(vL.CM, vR.CM)
		if err != nil {
			return 0, err
		}
		return int64(math.Round(f)), nil
	}
	// Normalize so cm is the sketch side and the other side an exact (or
	// midpoint-expanded) histogram marginalized to the join attribute.
	cm, other := vL.CM, vR
	if cm == nil {
		cm, other = vR.CM, vL
	}
	if other.Hist == nil {
		return 0, fmt.Errorf("estimate: J1 input has neither histogram nor sketch")
	}
	h := other.Hist
	if workflow.AttrsString(h.Attrs) != workflow.AttrsString(join) {
		m, err := h.Marginal(join...)
		if err != nil {
			return 0, err
		}
		h = m
	}
	ex, err := stats.Bucketize(h, cm.Spec)
	if err != nil {
		return 0, err
	}
	f, err := stats.ApproxDotProduct(cm.Approx(), ex)
	if err != nil {
		return 0, err
	}
	return int64(math.Round(f)), nil
}

// evalJoinHist computes the join result's distribution per the generalized
// J2/J3 rule: split the wanted attributes by owning side, join the two
// marginals on the join class.
func (e *Estimator) evalJoinHist(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	vL, err := e.Value(c.Inputs[0])
	if err != nil {
		return nil, err
	}
	vR, err := e.Value(c.Inputs[1])
	if err != nil {
		return nil, err
	}
	if vL.Hist == nil || vR.Hist == nil {
		return nil, fmt.Errorf("estimate: J2 inputs must be histograms")
	}
	wantL := []workflow.Attr{c.Join}
	wantR := []workflow.Attr{c.Join}
	for _, t := range s.Attrs {
		if t == c.Join {
			continue
		}
		switch {
		case histHasAttr(vL.Hist, t):
			wantL = append(wantL, t)
		case histHasAttr(vR.Hist, t):
			wantR = append(wantR, t)
		default:
			return nil, fmt.Errorf("estimate: attribute %v of target in neither J2 input", t)
		}
	}
	hL, err := vL.Hist.Marginal(wantL...)
	if err != nil {
		return nil, err
	}
	hR, err := vR.Hist.Marginal(wantR...)
	if err != nil {
		return nil, err
	}
	if spec, ok := gridOf(vL, vR); ok {
		if hL, err = snapAttr(hL, c.Join, spec); err != nil {
			return nil, err
		}
		if hR, err = snapAttr(hR, c.Join, spec); err != nil {
			return nil, err
		}
		h, err := stats.Join(hL, hR, c.Join, s.Attrs)
		if err != nil {
			return nil, err
		}
		// The bucket-level product counts every cross pair within a
		// bucket; under the uniform-spread assumption only 1/width of
		// them share a value — the same correction ApproxDotProduct
		// applies for J1.
		if w := spec.Width(); w > 1 {
			scaled := stats.NewHistogram(h.Attrs...)
			h.Each(func(vals []int64, f int64) {
				if q := int64(math.Round(float64(f) / w)); q > 0 {
					scaled.Inc(vals, q)
				}
			})
			h = scaled
		}
		return &stats.Value{Stat: s, Hist: h, Approx: true}, nil
	}
	h, err := stats.Join(hL, hR, c.Join, s.Attrs)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Hist: h}, nil
}

// evalJ4 computes |e| by union–division: divide the observable super-SE's
// join-column distribution by the extra relation's, total the quotient, and
// add the reject-variant cardinality (Equation 3 of the paper).
func (e *Estimator) evalJ4(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	a := []workflow.Attr{c.Join}
	vO, err := e.Value(c.Inputs[0])
	if err != nil {
		return nil, err
	}
	vK, err := e.Value(c.Inputs[1])
	if err != nil {
		return nil, err
	}
	hO, err := e.histInput(c, 0, a)
	if err != nil {
		return nil, err
	}
	hK, err := e.histInput(c, 1, a)
	if err != nil {
		return nil, err
	}
	rej, err := e.scalarInput(c, 2)
	if err != nil {
		return nil, err
	}
	if spec, ok := gridOf(vO, vK); ok {
		if hO, err = snapAttr(hO, c.Join, spec); err != nil {
			return nil, err
		}
		if hK, err = snapAttr(hK, c.Join, spec); err != nil {
			return nil, err
		}
		div, err := approxDivide(hO, hK, c.Join)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Scalar: div.Total() + rej, Approx: true}, nil
	}
	div, err := stats.Divide(hO, hK)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Scalar: div.Total() + rej}, nil
}

// evalJ5 is J4 for distributions: divide the super-SE's joint distribution
// bucket-wise by the extra relation's join distribution, marginalize away
// the join attribute, and add the reject variant's distribution.
func (e *Estimator) evalJ5(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	oAttrs := workflow.SortAttrs(dedupeAttrs(append([]workflow.Attr{c.Join}, s.Attrs...)))
	vO, err := e.Value(c.Inputs[0])
	if err != nil {
		return nil, err
	}
	vK, err := e.Value(c.Inputs[1])
	if err != nil {
		return nil, err
	}
	hO, err := e.histInput(c, 0, oAttrs)
	if err != nil {
		return nil, err
	}
	hK, err := e.histInput(c, 1, []workflow.Attr{c.Join})
	if err != nil {
		return nil, err
	}
	hRej, err := e.histInput(c, 2, s.Attrs)
	if err != nil {
		return nil, err
	}
	var div *stats.Histogram
	if spec, ok := gridOf(vO, vK); ok {
		// Only the join coordinate snaps onto the sketch grid; the kept
		// attributes retain their real values for the marginal below.
		if hO, err = snapAttr(hO, c.Join, spec); err != nil {
			return nil, err
		}
		if hK, err = snapAttr(hK, c.Join, spec); err != nil {
			return nil, err
		}
		div, err = approxDivide(hO, hK, c.Join)
	} else {
		div, err = stats.DivideProject(hO, hK)
	}
	if err != nil {
		return nil, err
	}
	keep, err := div.Marginal(s.Attrs...)
	if err != nil {
		return nil, err
	}
	h, err := stats.AddHist(keep, hRej)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Hist: h}, nil
}

// evalR1 derives a reject singleton's statistic: the rows of t whose join
// value has no partner in k.
func (e *Estimator) evalR1(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	vT, err := e.Value(c.Inputs[0])
	if err != nil {
		return nil, err
	}
	vK, err := e.Value(c.Inputs[1])
	if err != nil {
		return nil, err
	}
	spec, gridded := gridOf(vT, vK)
	hK, err := e.histInput(c, 1, []workflow.Attr{c.Join})
	if err != nil {
		return nil, err
	}
	if gridded {
		if hK, err = snapAttr(hK, c.Join, spec); err != nil {
			return nil, err
		}
	}
	if s.Kind == stats.Card {
		hT, err := e.histInput(c, 0, []workflow.Attr{c.Join})
		if err != nil {
			return nil, err
		}
		if gridded {
			if hT, err = snapAttr(hT, c.Join, spec); err != nil {
				return nil, err
			}
		}
		var card int64
		hT.Each(func(vals []int64, f int64) {
			if hK.Freq(vals[0]) == 0 {
				card += f
			}
		})
		return &stats.Value{Stat: s, Scalar: card}, nil
	}
	tAttrs := workflow.SortAttrs(dedupeAttrs(append([]workflow.Attr{c.Join}, s.Attrs...)))
	hT, err := e.histInput(c, 0, tAttrs)
	if err != nil {
		return nil, err
	}
	if gridded {
		if hT, err = snapAttr(hT, c.Join, spec); err != nil {
			return nil, err
		}
	}
	jPos := attrPos(hT.Attrs, c.Join)
	filtered := stats.NewHistogram(hT.Attrs...)
	hT.Each(func(vals []int64, f int64) {
		if hK.Freq(vals[jPos]) == 0 {
			filtered.Inc(vals, f)
		}
	})
	h, err := filtered.Marginal(s.Attrs...)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Hist: h}, nil
}

// evalBoundaryCopy relabels a statistic across a pass-through block
// boundary: the upstream histogram's class representatives become the
// downstream block's.
func (e *Estimator) evalBoundaryCopy(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	if s.Kind != stats.Hist {
		v, err := e.scalarInput(c, 0)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Scalar: v}, nil
	}
	input := s.Target.Set.Lowest()
	up := make([]workflow.Attr, len(s.Attrs))
	for i, a := range s.Attrs {
		u, err := e.Res.BoundaryClass(s.Target.Block, input, a)
		if err != nil {
			return nil, err
		}
		up[i] = u
	}
	v0, err := e.Value(c.Inputs[0])
	if err != nil {
		return nil, err
	}
	h, err := e.histInput(c, 0, workflow.SortAttrs(dedupeAttrs(append([]workflow.Attr(nil), up...))))
	if err != nil {
		return nil, err
	}
	out, err := relabel(h, up, s.Attrs)
	if err != nil {
		return nil, err
	}
	res := &stats.Value{Stat: s, Hist: out}
	// Relabeling across a pass-through boundary moves no mass, so a
	// sketch-backed single-attribute distribution keeps its grid.
	if v0.CM != nil && len(s.Attrs) == 1 {
		res.CM = v0.CM
	}
	return res, nil
}

// evalS1 sums the buckets of the predicate column's distribution that
// satisfy the selection predicate.
func (e *Estimator) evalS1(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	op, err := e.chainOp(s)
	if err != nil {
		return nil, err
	}
	sp := e.Res.Space(s.Target.Block)
	class := sp.ClassOf(op.Pred.Attr)
	v, err := e.Value(c.Inputs[0])
	if err != nil {
		return nil, err
	}
	// A sketch-backed distribution has its mass at bucket midpoints;
	// testing the predicate against those would make equality predicates
	// match (almost) never and range predicates jump at bucket edges.
	// Instead weight each bucket by the fraction of its value range that
	// satisfies the predicate, assuming uniform spread within the bucket.
	if v.CM != nil {
		spec := v.CM.Spec
		var card float64
		for b := 0; b < spec.N; b++ {
			f := v.CM.BucketEstimate(b)
			if f <= 0 {
				continue
			}
			lo, hi := bucketRange(spec, b)
			card += float64(f) * predFraction(op.Pred, lo, hi)
		}
		return &stats.Value{Stat: s, Scalar: int64(math.Round(card)), Approx: true}, nil
	}
	h, err := e.histInput(c, 0, []workflow.Attr{class})
	if err != nil {
		return nil, err
	}
	var card int64
	h.Each(func(vals []int64, f int64) {
		if op.Pred.Matches(vals[0]) {
			card += f
		}
	})
	return &stats.Value{Stat: s, Scalar: card}, nil
}

// predFraction returns the fraction of the integers in [lo, hi] that
// satisfy the predicate.
func predFraction(p *workflow.Predicate, lo, hi int64) float64 {
	size := float64(hi) - float64(lo) + 1
	if size <= 0 {
		return 0
	}
	inRange := p.Const >= lo && p.Const <= hi
	var n float64
	switch p.Op {
	case workflow.CmpEq:
		if inRange {
			n = 1
		}
	case workflow.CmpNe:
		n = size
		if inRange {
			n--
		}
	case workflow.CmpLt:
		n = clampf(float64(p.Const)-float64(lo), 0, size)
	case workflow.CmpLe:
		n = clampf(float64(p.Const)-float64(lo)+1, 0, size)
	case workflow.CmpGt:
		n = clampf(float64(hi)-float64(p.Const), 0, size)
	case workflow.CmpGe:
		n = clampf(float64(hi)-float64(p.Const)+1, 0, size)
	}
	return n / size
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// evalS2 filters the joint distribution by the predicate and marginalizes
// down to the wanted attributes.
func (e *Estimator) evalS2(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	op, err := e.chainOp(s)
	if err != nil {
		return nil, err
	}
	sp := e.Res.Space(s.Target.Block)
	class := sp.ClassOf(op.Pred.Attr)
	need := workflow.SortAttrs(dedupeAttrs(append([]workflow.Attr{class}, s.Attrs...)))
	h, err := e.histInput(c, 0, need)
	if err != nil {
		return nil, err
	}
	pPos := attrPos(h.Attrs, class)
	filtered := stats.NewHistogram(h.Attrs...)
	h.Each(func(vals []int64, f int64) {
		if op.Pred.Matches(vals[pPos]) {
			filtered.Inc(vals, f)
		}
	})
	out, err := filtered.Marginal(s.Attrs...)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Hist: out}, nil
}

// evalG2 builds the distribution over a group-by boundary: each distinct
// key combination upstream contributes one group.
func (e *Estimator) evalG2(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	v, err := e.Value(c.Inputs[0])
	if err != nil {
		return nil, err
	}
	if v.Hist == nil {
		return nil, fmt.Errorf("estimate: G2 input is not a histogram")
	}
	input := s.Target.Set.Lowest()
	up := make([]workflow.Attr, len(s.Attrs))
	for i, a := range s.Attrs {
		u, err := e.Res.BoundaryClass(s.Target.Block, input, a)
		if err != nil {
			return nil, err
		}
		up[i] = u
	}
	pos := make([]int, len(up))
	for i, a := range up {
		pos[i] = attrPos(v.Hist.Attrs, a)
		if pos[i] < 0 {
			return nil, fmt.Errorf("estimate: G2 key %v not in upstream histogram", a)
		}
	}
	out := stats.NewHistogram(s.Attrs...)
	// Sort target positions to match the output histogram's canonical
	// attribute order.
	order := attrOrder(s.Attrs)
	v.Hist.Each(func(vals []int64, _ int64) {
		proj := make([]int64, len(pos))
		for i := range pos {
			proj[order[i]] = vals[pos[i]]
		}
		out.Inc(proj, 1)
	})
	return &stats.Value{Stat: s, Hist: out}, nil
}

// chainOp returns the chain operator a chain rule refers to: for a chain
// point at depth d it is ops[d-1]; for a cooked singleton it is the last
// operator.
func (e *Estimator) chainOp(s stats.Stat) (*workflow.Node, error) {
	t := s.Target
	blk := e.Res.Analysis.Blocks[t.Block]
	i := t.Set.Lowest()
	ops := blk.Inputs[i].Ops
	d := len(ops)
	if t.IsChainPoint() {
		d = t.Depth
	}
	if d < 1 || d > len(ops) {
		return nil, fmt.Errorf("estimate: no chain operator at depth %d of input %d", d, i)
	}
	return ops[d-1], nil
}

// relabel renames histogram attributes from `from` (positions matched by
// value) to `to` and re-sorts buckets into the new canonical order.
func relabel(h *stats.Histogram, from, to []workflow.Attr) (*stats.Histogram, error) {
	if len(from) != len(to) {
		return nil, fmt.Errorf("estimate: relabel arity mismatch")
	}
	srcPos := make([]int, len(from))
	for i, a := range from {
		srcPos[i] = attrPos(h.Attrs, a)
		if srcPos[i] < 0 {
			return nil, fmt.Errorf("estimate: relabel source %v missing", a)
		}
	}
	out := stats.NewHistogram(to...)
	order := attrOrder(to)
	h.Each(func(vals []int64, f int64) {
		proj := make([]int64, len(to))
		for i := range to {
			proj[order[i]] = vals[srcPos[i]]
		}
		out.Inc(proj, f)
	})
	return out, nil
}

// attrOrder returns, for each attribute in the given list, its position in
// the canonically sorted version of the list.
func attrOrder(attrs []workflow.Attr) []int {
	sorted := workflow.SortAttrs(append([]workflow.Attr(nil), attrs...))
	out := make([]int, len(attrs))
	for i, a := range attrs {
		for j, b := range sorted {
			if a == b {
				out[i] = j
				break
			}
		}
	}
	return out
}

func attrPos(attrs []workflow.Attr, a workflow.Attr) int {
	for i, x := range attrs {
		if x == a {
			return i
		}
	}
	return -1
}

func histHasAttr(h *stats.Histogram, a workflow.Attr) bool { return attrPos(h.Attrs, a) >= 0 }

func dedupeAttrs(attrs []workflow.Attr) []workflow.Attr {
	seen := make(map[workflow.Attr]bool, len(attrs))
	out := attrs[:0]
	for _, a := range attrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Coverage reports how many SE cardinalities across all blocks are
// derivable from the store — a quick diagnostic for operators checking
// whether an observation run (or a loaded statistics file) suffices before
// optimizing.
func Coverage(res *css.Result, store *stats.Store) (derivable, total int) {
	e := New(res, store)
	for bi, sp := range res.Spaces {
		for _, se := range sp.SEs {
			total++
			if _, err := e.CardOf(bi, se); err == nil {
				derivable++
			}
		}
	}
	return derivable, total
}
