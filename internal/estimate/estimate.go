// Package estimate evaluates candidate statistics sets numerically: given
// the statistics observed during an instrumented run (or supplied by source
// systems), it derives the value of any other statistic by recursively
// applying the paper's rules — dot products for join cardinalities (J1),
// join projections (J2/J3), the union–division algebra (J4/J5), selection
// and projection arithmetic (S/P/U), group-by rules (G1/G2) and the
// identity rules (I1/I2). With exact per-value histograms every derived
// cardinality is exact, which is what lets the optimizer cost every
// reordering from a single instrumented execution.
package estimate

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Estimator derives statistic values from an observed store.
type Estimator struct {
	Res   *css.Result
	Store *stats.Store

	memo       map[stats.Key]*stats.Value
	inProgress map[stats.Key]bool
}

// New returns an estimator over the given CSS result and observation store.
func New(res *css.Result, store *stats.Store) *Estimator {
	return &Estimator{
		Res:        res,
		Store:      store,
		memo:       make(map[stats.Key]*stats.Value),
		inProgress: make(map[stats.Key]bool),
	}
}

// SizeOf implements costmodel.Sizes: target sizes from this run's derived
// statistics, realizing the paper's Section 5.4 "sizes from the previous
// runs" for the CPU cost metric of subsequent cycles.
func (e *Estimator) SizeOf(t stats.Target) (float64, bool) {
	v, err := e.Value(stats.NewCard(t))
	if err != nil {
		return 0, false
	}
	// Cardinalities above 2^53 would round silently in the float64 cost
	// arithmetic; report them as unavailable rather than subtly wrong.
	f, err := stats.Float64FromInt64(v.Scalar)
	if err != nil {
		return 0, false
	}
	return f, true
}

// CardOf returns the (derived) cardinality of an SE.
func (e *Estimator) CardOf(block int, se expr.Set) (int64, error) {
	v, err := e.Value(stats.NewCard(stats.BlockSE(block, se)))
	if err != nil {
		return 0, err
	}
	return v.Scalar, nil
}

// Value computes the value of a statistic: directly from the store when
// observed, otherwise through the first evaluable candidate statistics set.
func (e *Estimator) Value(s stats.Stat) (*stats.Value, error) {
	k := s.Key()
	if v, ok := e.memo[k]; ok {
		if v == nil {
			return nil, fmt.Errorf("estimate: statistic %v not derivable", k)
		}
		return v, nil
	}
	if e.inProgress[k] {
		return nil, fmt.Errorf("estimate: cyclic derivation at %v", k)
	}
	if e.Store.Has(s) {
		v, err := e.fromStore(s)
		if err != nil {
			return nil, err
		}
		e.memo[k] = v
		return v, nil
	}
	e.inProgress[k] = true
	defer delete(e.inProgress, k)
	var firstErr error
	for _, c := range e.Res.CSS[k] {
		v, err := e.eval(s, c)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		e.memo[k] = v
		return v, nil
	}
	e.memo[k] = nil
	if firstErr != nil {
		return nil, fmt.Errorf("estimate: statistic %v not derivable: %w", k, firstErr)
	}
	return nil, fmt.Errorf("estimate: statistic %v not observed and has no candidate statistics set", k)
}

func (e *Estimator) fromStore(s stats.Stat) (*stats.Value, error) {
	if s.Kind == stats.Hist {
		h, err := e.Store.Hist(s)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Hist: h}, nil
	}
	v, err := e.Store.Scalar(s)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Scalar: v}, nil
}

// histInput evaluates input idx of the CSS as a histogram marginalized down
// to the wanted attributes (which absorbs I2-substituted supersets).
func (e *Estimator) histInput(c stats.CSS, idx int, want []workflow.Attr) (*stats.Histogram, error) {
	v, err := e.Value(c.Inputs[idx])
	if err != nil {
		return nil, err
	}
	if v.Hist == nil {
		return nil, fmt.Errorf("estimate: CSS input %d is not a histogram", idx)
	}
	if workflow.AttrsString(v.Hist.Attrs) == workflow.AttrsString(want) {
		return v.Hist, nil
	}
	return v.Hist.Marginal(want...)
}

func (e *Estimator) scalarInput(c stats.CSS, idx int) (int64, error) {
	v, err := e.Value(c.Inputs[idx])
	if err != nil {
		return 0, err
	}
	if v.Hist != nil {
		return 0, fmt.Errorf("estimate: CSS input %d is a histogram, want scalar", idx)
	}
	return v.Scalar, nil
}

// eval evaluates one CSS according to its rule.
func (e *Estimator) eval(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	switch c.Rule {
	case "J1":
		return e.evalJ1(s, c)
	case "J2", "J3":
		return e.evalJoinHist(s, c)
	case "J4":
		return e.evalJ4(s, c)
	case "J5":
		return e.evalJ5(s, c)
	case "R1":
		return e.evalR1(s, c)
	case "FK", "P1", "U1":
		v, err := e.scalarInput(c, 0)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Scalar: v}, nil
	case "P2", "U2", "I2":
		h, err := e.histInput(c, 0, s.Attrs)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Hist: h}, nil
	case "B0":
		return e.evalBoundaryCopy(s, c)
	case "S1":
		return e.evalS1(s, c)
	case "S2":
		return e.evalS2(s, c)
	case "G1":
		v, err := e.scalarInput(c, 0)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Scalar: v}, nil
	case "G2":
		return e.evalG2(s, c)
	case "D1":
		v, err := e.Value(c.Inputs[0])
		if err != nil {
			return nil, err
		}
		if v.Hist == nil {
			return nil, fmt.Errorf("estimate: D1 input is not a histogram")
		}
		return &stats.Value{Stat: s, Scalar: int64(v.Hist.Buckets())}, nil
	case "I1":
		v, err := e.Value(c.Inputs[0])
		if err != nil {
			return nil, err
		}
		if v.Hist == nil {
			return nil, fmt.Errorf("estimate: I1 input is not a histogram")
		}
		return &stats.Value{Stat: s, Scalar: v.Hist.Total()}, nil
	default:
		return nil, fmt.Errorf("estimate: unknown rule %q", c.Rule)
	}
}

// evalJ1 computes |L ⋈ R| as the dot product of the join-column
// distributions.
func (e *Estimator) evalJ1(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	a := []workflow.Attr{c.Join}
	hL, err := e.histInput(c, 0, a)
	if err != nil {
		return nil, err
	}
	hR, err := e.histInput(c, 1, a)
	if err != nil {
		return nil, err
	}
	card, err := stats.DotProduct(hL, hR)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Scalar: card}, nil
}

// evalJoinHist computes the join result's distribution per the generalized
// J2/J3 rule: split the wanted attributes by owning side, join the two
// marginals on the join class.
func (e *Estimator) evalJoinHist(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	vL, err := e.Value(c.Inputs[0])
	if err != nil {
		return nil, err
	}
	vR, err := e.Value(c.Inputs[1])
	if err != nil {
		return nil, err
	}
	if vL.Hist == nil || vR.Hist == nil {
		return nil, fmt.Errorf("estimate: J2 inputs must be histograms")
	}
	wantL := []workflow.Attr{c.Join}
	wantR := []workflow.Attr{c.Join}
	for _, t := range s.Attrs {
		if t == c.Join {
			continue
		}
		switch {
		case histHasAttr(vL.Hist, t):
			wantL = append(wantL, t)
		case histHasAttr(vR.Hist, t):
			wantR = append(wantR, t)
		default:
			return nil, fmt.Errorf("estimate: attribute %v of target in neither J2 input", t)
		}
	}
	hL, err := vL.Hist.Marginal(wantL...)
	if err != nil {
		return nil, err
	}
	hR, err := vR.Hist.Marginal(wantR...)
	if err != nil {
		return nil, err
	}
	h, err := stats.Join(hL, hR, c.Join, s.Attrs)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Hist: h}, nil
}

// evalJ4 computes |e| by union–division: divide the observable super-SE's
// join-column distribution by the extra relation's, total the quotient, and
// add the reject-variant cardinality (Equation 3 of the paper).
func (e *Estimator) evalJ4(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	a := []workflow.Attr{c.Join}
	hO, err := e.histInput(c, 0, a)
	if err != nil {
		return nil, err
	}
	hK, err := e.histInput(c, 1, a)
	if err != nil {
		return nil, err
	}
	rej, err := e.scalarInput(c, 2)
	if err != nil {
		return nil, err
	}
	div, err := stats.Divide(hO, hK)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Scalar: div.Total() + rej}, nil
}

// evalJ5 is J4 for distributions: divide the super-SE's joint distribution
// bucket-wise by the extra relation's join distribution, marginalize away
// the join attribute, and add the reject variant's distribution.
func (e *Estimator) evalJ5(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	oAttrs := workflow.SortAttrs(dedupeAttrs(append([]workflow.Attr{c.Join}, s.Attrs...)))
	hO, err := e.histInput(c, 0, oAttrs)
	if err != nil {
		return nil, err
	}
	hK, err := e.histInput(c, 1, []workflow.Attr{c.Join})
	if err != nil {
		return nil, err
	}
	hRej, err := e.histInput(c, 2, s.Attrs)
	if err != nil {
		return nil, err
	}
	div, err := stats.DivideProject(hO, hK)
	if err != nil {
		return nil, err
	}
	keep, err := div.Marginal(s.Attrs...)
	if err != nil {
		return nil, err
	}
	h, err := stats.AddHist(keep, hRej)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Hist: h}, nil
}

// evalR1 derives a reject singleton's statistic: the rows of t whose join
// value has no partner in k.
func (e *Estimator) evalR1(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	hK, err := e.histInput(c, 1, []workflow.Attr{c.Join})
	if err != nil {
		return nil, err
	}
	if s.Kind == stats.Card {
		hT, err := e.histInput(c, 0, []workflow.Attr{c.Join})
		if err != nil {
			return nil, err
		}
		var card int64
		hT.Each(func(vals []int64, f int64) {
			if hK.Freq(vals[0]) == 0 {
				card += f
			}
		})
		return &stats.Value{Stat: s, Scalar: card}, nil
	}
	tAttrs := workflow.SortAttrs(dedupeAttrs(append([]workflow.Attr{c.Join}, s.Attrs...)))
	hT, err := e.histInput(c, 0, tAttrs)
	if err != nil {
		return nil, err
	}
	jPos := attrPos(hT.Attrs, c.Join)
	filtered := stats.NewHistogram(hT.Attrs...)
	hT.Each(func(vals []int64, f int64) {
		if hK.Freq(vals[jPos]) == 0 {
			filtered.Inc(vals, f)
		}
	})
	h, err := filtered.Marginal(s.Attrs...)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Hist: h}, nil
}

// evalBoundaryCopy relabels a statistic across a pass-through block
// boundary: the upstream histogram's class representatives become the
// downstream block's.
func (e *Estimator) evalBoundaryCopy(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	if s.Kind != stats.Hist {
		v, err := e.scalarInput(c, 0)
		if err != nil {
			return nil, err
		}
		return &stats.Value{Stat: s, Scalar: v}, nil
	}
	input := s.Target.Set.Lowest()
	up := make([]workflow.Attr, len(s.Attrs))
	for i, a := range s.Attrs {
		u, err := e.Res.BoundaryClass(s.Target.Block, input, a)
		if err != nil {
			return nil, err
		}
		up[i] = u
	}
	h, err := e.histInput(c, 0, workflow.SortAttrs(dedupeAttrs(append([]workflow.Attr(nil), up...))))
	if err != nil {
		return nil, err
	}
	out, err := relabel(h, up, s.Attrs)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Hist: out}, nil
}

// evalS1 sums the buckets of the predicate column's distribution that
// satisfy the selection predicate.
func (e *Estimator) evalS1(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	op, err := e.chainOp(s)
	if err != nil {
		return nil, err
	}
	sp := e.Res.Space(s.Target.Block)
	class := sp.ClassOf(op.Pred.Attr)
	h, err := e.histInput(c, 0, []workflow.Attr{class})
	if err != nil {
		return nil, err
	}
	var card int64
	h.Each(func(vals []int64, f int64) {
		if op.Pred.Matches(vals[0]) {
			card += f
		}
	})
	return &stats.Value{Stat: s, Scalar: card}, nil
}

// evalS2 filters the joint distribution by the predicate and marginalizes
// down to the wanted attributes.
func (e *Estimator) evalS2(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	op, err := e.chainOp(s)
	if err != nil {
		return nil, err
	}
	sp := e.Res.Space(s.Target.Block)
	class := sp.ClassOf(op.Pred.Attr)
	need := workflow.SortAttrs(dedupeAttrs(append([]workflow.Attr{class}, s.Attrs...)))
	h, err := e.histInput(c, 0, need)
	if err != nil {
		return nil, err
	}
	pPos := attrPos(h.Attrs, class)
	filtered := stats.NewHistogram(h.Attrs...)
	h.Each(func(vals []int64, f int64) {
		if op.Pred.Matches(vals[pPos]) {
			filtered.Inc(vals, f)
		}
	})
	out, err := filtered.Marginal(s.Attrs...)
	if err != nil {
		return nil, err
	}
	return &stats.Value{Stat: s, Hist: out}, nil
}

// evalG2 builds the distribution over a group-by boundary: each distinct
// key combination upstream contributes one group.
func (e *Estimator) evalG2(s stats.Stat, c stats.CSS) (*stats.Value, error) {
	v, err := e.Value(c.Inputs[0])
	if err != nil {
		return nil, err
	}
	if v.Hist == nil {
		return nil, fmt.Errorf("estimate: G2 input is not a histogram")
	}
	input := s.Target.Set.Lowest()
	up := make([]workflow.Attr, len(s.Attrs))
	for i, a := range s.Attrs {
		u, err := e.Res.BoundaryClass(s.Target.Block, input, a)
		if err != nil {
			return nil, err
		}
		up[i] = u
	}
	pos := make([]int, len(up))
	for i, a := range up {
		pos[i] = attrPos(v.Hist.Attrs, a)
		if pos[i] < 0 {
			return nil, fmt.Errorf("estimate: G2 key %v not in upstream histogram", a)
		}
	}
	out := stats.NewHistogram(s.Attrs...)
	// Sort target positions to match the output histogram's canonical
	// attribute order.
	order := attrOrder(s.Attrs)
	v.Hist.Each(func(vals []int64, _ int64) {
		proj := make([]int64, len(pos))
		for i := range pos {
			proj[order[i]] = vals[pos[i]]
		}
		out.Inc(proj, 1)
	})
	return &stats.Value{Stat: s, Hist: out}, nil
}

// chainOp returns the chain operator a chain rule refers to: for a chain
// point at depth d it is ops[d-1]; for a cooked singleton it is the last
// operator.
func (e *Estimator) chainOp(s stats.Stat) (*workflow.Node, error) {
	t := s.Target
	blk := e.Res.Analysis.Blocks[t.Block]
	i := t.Set.Lowest()
	ops := blk.Inputs[i].Ops
	d := len(ops)
	if t.IsChainPoint() {
		d = t.Depth
	}
	if d < 1 || d > len(ops) {
		return nil, fmt.Errorf("estimate: no chain operator at depth %d of input %d", d, i)
	}
	return ops[d-1], nil
}

// relabel renames histogram attributes from `from` (positions matched by
// value) to `to` and re-sorts buckets into the new canonical order.
func relabel(h *stats.Histogram, from, to []workflow.Attr) (*stats.Histogram, error) {
	if len(from) != len(to) {
		return nil, fmt.Errorf("estimate: relabel arity mismatch")
	}
	srcPos := make([]int, len(from))
	for i, a := range from {
		srcPos[i] = attrPos(h.Attrs, a)
		if srcPos[i] < 0 {
			return nil, fmt.Errorf("estimate: relabel source %v missing", a)
		}
	}
	out := stats.NewHistogram(to...)
	order := attrOrder(to)
	h.Each(func(vals []int64, f int64) {
		proj := make([]int64, len(to))
		for i := range to {
			proj[order[i]] = vals[srcPos[i]]
		}
		out.Inc(proj, f)
	})
	return out, nil
}

// attrOrder returns, for each attribute in the given list, its position in
// the canonically sorted version of the list.
func attrOrder(attrs []workflow.Attr) []int {
	sorted := workflow.SortAttrs(append([]workflow.Attr(nil), attrs...))
	out := make([]int, len(attrs))
	for i, a := range attrs {
		for j, b := range sorted {
			if a == b {
				out[i] = j
				break
			}
		}
	}
	return out
}

func attrPos(attrs []workflow.Attr, a workflow.Attr) int {
	for i, x := range attrs {
		if x == a {
			return i
		}
	}
	return -1
}

func histHasAttr(h *stats.Histogram, a workflow.Attr) bool { return attrPos(h.Attrs, a) >= 0 }

func dedupeAttrs(attrs []workflow.Attr) []workflow.Attr {
	seen := make(map[workflow.Attr]bool, len(attrs))
	out := attrs[:0]
	for _, a := range attrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Coverage reports how many SE cardinalities across all blocks are
// derivable from the store — a quick diagnostic for operators checking
// whether an observation run (or a loaded statistics file) suffices before
// optimizing.
func Coverage(res *css.Result, store *stats.Store) (derivable, total int) {
	e := New(res, store)
	for bi, sp := range res.Spaces {
		for _, se := range sp.SEs {
			total++
			if _, err := e.CardOf(bi, se); err == nil {
				derivable++
			}
		}
	}
	return derivable, total
}
