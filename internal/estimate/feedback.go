package estimate

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/stats"
)

// Estimate feedback closes the loop the paper leaves open: after an
// instrumented run the engines know every materialized sub-expression's
// *actual* cardinality, and the estimator can derive the same cardinality
// from the selected statistics set. Comparing the two per SE — the q-error
// lens of the cardinality-estimation literature — tells an operator which
// derivation rules held up, and calibrates how eagerly drift between runs
// should trigger re-optimization: a plan justified by exact derivations can
// tolerate more drift than one resting on shaky estimates.

// SEReport compares one statistic target's actual cardinality against the
// estimate derived from the selected statistics.
type SEReport struct {
	// Block is the owning optimizable block.
	Block int `json:"block"`
	// Target identifies the SE or chain point.
	Target stats.Target `json:"-"`
	// Label renders the target with the block's input names.
	Label string `json:"label"`
	// Actual is the cardinality the engines measured.
	Actual int64 `json:"actual"`
	// Estimate is the derived cardinality (0 when not derivable).
	Estimate int64 `json:"estimate"`
	// Rule is the root rule of the derivation ("observed" for direct store
	// hits; empty when not derivable).
	Rule string `json:"rule,omitempty"`
	// QError is max(actual/estimate, estimate/actual) — 1 means exact,
	// +Inf when exactly one side is zero.
	QError float64 `json:"qerror,omitempty"`
	// Derivable reports whether the estimator could derive the target
	// from the selected statistics at all.
	Derivable bool `json:"derivable"`
	// Vacuous marks a derivable target whose actual and estimate are both
	// zero. The q-error is 1 by definition, but an empty SE whose estimate
	// agrees by coincidence tests nothing about the derivation, so vacuous
	// targets are excluded from the q-error aggregates and the calibration.
	Vacuous bool `json:"vacuous,omitempty"`
	// Tier records which statistics tier fed the derivation: "approx" when
	// any statistic on the derivation path came from a sketch, "exact"
	// otherwise (empty when not derivable). Per-tier q-errors are what
	// calibrate how much cheaper observation is worth in estimate quality.
	Tier string `json:"tier,omitempty"`
}

// RuleAccuracy aggregates q-errors per root derivation rule, surfacing
// which of the paper's rule families (S/P/J/G/U/I, including the
// union–division J4/J5 paths) were accurate on this workload.
type RuleAccuracy struct {
	Rule  string  `json:"rule"`
	Count int     `json:"count"`
	MaxQ  float64 `json:"maxQ"`
	MeanQ float64 `json:"meanQ"`
}

// Feedback is the estimate-feedback report of one instrumented run.
type Feedback struct {
	// SEs lists the per-target comparisons in deterministic order (block,
	// then input set, then chain depth).
	SEs []SEReport `json:"ses"`
	// Rules aggregates accuracy per root rule, sorted by rule name.
	Rules []RuleAccuracy `json:"rules"`
	// Derivable / Total count targets the estimator could / should derive.
	Derivable int `json:"derivable"`
	Total     int `json:"total"`
	// MaxQ and MeanQ summarize the finite q-errors of derivable,
	// non-vacuous targets (1 when every derivation was exact; 0 when no
	// target produced usable evidence).
	MaxQ  float64 `json:"maxQ"`
	MeanQ float64 `json:"meanQ"`
	// P90Q is the 90th-percentile finite q-error of derivable, non-vacuous
	// targets (nearest-rank; 0 when there are none). Calibration divides by
	// it instead of MaxQ so a single outlier cannot zero the drift
	// threshold and flap the re-optimization trigger.
	P90Q float64 `json:"p90q,omitempty"`
	// Unbounded counts derivable targets with an infinite q-error (one
	// side zero, the other not).
	Unbounded int `json:"unbounded"`
	// UnboundedEmpty counts the unbounded targets whose actual was zero:
	// the SE was empty at this scale and the estimate merely over-predicted
	// a few rows. These disagreements are noise on tiny inputs, so they do
	// not force the calibrated threshold to zero the way a genuinely broken
	// derivation (actual > 0, estimate 0) does.
	UnboundedEmpty int `json:"unboundedEmpty,omitempty"`
	// Vacuous counts derivable targets where actual and estimate are both
	// zero (see SEReport.Vacuous).
	Vacuous int `json:"vacuous,omitempty"`
}

// BuildFeedback compares each actual cardinality from an instrumented run
// against the estimate derived from the selected statistics. SE targets
// that are not derivable are reported as such; underivable chain points are
// skipped silently (inner chain points are only in the statistic universe
// when a rule needs them, so their absence is expected, not a failure).
func BuildFeedback(res *css.Result, est *Estimator, actuals map[stats.Target]int64) *Feedback {
	return buildFeedback(res, est, actuals, nil)
}

// ConeFeedback builds the mid-run evidence an adaptive run checks at block
// boundaries: actuals holds the cardinalities tapped from the blocks
// completed so far (plus the boundary cardinalities feeding the pending
// blocks), and est is the estimator whose derivations justified the
// not-yet-executed cone. skew, when non-nil, multiplies the derived
// estimates of the named target blocks — the deterministic forcing knob
// the adaptive tests and the -replan-skew flag use to provoke a replan
// without perturbing data.
func ConeFeedback(res *css.Result, est *Estimator, actuals map[stats.Target]int64, skew map[int]float64) *Feedback {
	return buildFeedback(res, est, actuals, skew)
}

func buildFeedback(res *css.Result, est *Estimator, actuals map[stats.Target]int64, skew map[int]float64) *Feedback {
	targets := make([]stats.Target, 0, len(actuals))
	for t := range actuals {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool {
		a, b := targets[i], targets[j]
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Set != b.Set {
			return a.Set < b.Set
		}
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		if a.RejectInput != b.RejectInput {
			return a.RejectInput < b.RejectInput
		}
		return a.RejectEdge < b.RejectEdge
	})

	f := &Feedback{}
	var qSum float64
	var finite []float64
	byRule := make(map[string][]float64)
	for _, t := range targets {
		var blk = res.Analysis.Blocks[t.Block]
		rep := SEReport{
			Block:  t.Block,
			Target: t,
			Label:  t.Label(blk),
			Actual: actuals[t],
		}
		ex, err := est.Explain(stats.NewCard(t))
		if err != nil {
			if t.IsChainPoint() {
				continue
			}
			f.SEs = append(f.SEs, rep)
			f.Total++
			continue
		}
		rep.Derivable = true
		rep.Estimate = ex.Value.Scalar
		if k, ok := skew[t.Block]; ok {
			rep.Estimate = int64(float64(rep.Estimate) * k)
		}
		rep.Rule = ex.Rule
		rep.Tier = "exact"
		if ex.Value.Approx {
			rep.Tier = "approx"
		}
		rep.QError = qError(rep.Actual, rep.Estimate)
		rep.Vacuous = rep.Actual == 0 && rep.Estimate == 0
		f.SEs = append(f.SEs, rep)
		f.Total++
		f.Derivable++
		switch {
		case rep.Vacuous:
			f.Vacuous++
		case math.IsInf(rep.QError, 1):
			f.Unbounded++
			if rep.Actual == 0 {
				f.UnboundedEmpty++
			}
		default:
			qSum += rep.QError
			finite = append(finite, rep.QError)
			if rep.QError > f.MaxQ {
				f.MaxQ = rep.QError
			}
		}
		byRule[rep.Rule] = append(byRule[rep.Rule], rep.QError)
	}
	if len(finite) > 0 {
		f.MeanQ = qSum / float64(len(finite))
		sort.Float64s(finite)
		f.P90Q = quantileOf(finite, calibrationQuantile)
	}

	rules := make([]string, 0, len(byRule))
	for r := range byRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		ra := RuleAccuracy{Rule: r}
		var sum float64
		var n int
		for _, q := range byRule[r] {
			ra.Count++
			if q > ra.MaxQ {
				ra.MaxQ = q
			}
			if !math.IsInf(q, 1) {
				sum += q
				n++
			}
		}
		if n > 0 {
			ra.MeanQ = sum / float64(n)
		}
		f.Rules = append(f.Rules, ra)
	}
	return f
}

// qError is the standard cardinality-estimation accuracy measure:
// max(act/est, est/act), 1 for an exact estimate, +Inf when exactly one of
// the two is zero.
func qError(act, est int64) float64 {
	if act == est {
		return 1
	}
	if act == 0 || est == 0 {
		return math.Inf(1)
	}
	a, b := math.Abs(float64(act)), math.Abs(float64(est))
	return math.Max(a/b, b/a)
}

// calibrationQuantile is the finite q-error quantile the calibration
// divides by: high enough to capture systematic inaccuracy, but not the
// maximum, so one outlying derivation cannot zero the threshold.
const calibrationQuantile = 0.9

// quantileOf returns the p-quantile of ascending-sorted qs by the
// nearest-rank method (deterministic, no interpolation).
func quantileOf(qs []float64, p float64) float64 {
	if len(qs) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(qs)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(qs) {
		idx = len(qs) - 1
	}
	return qs[idx]
}

// CalibratedThreshold scales a base drift threshold by the feedback's
// accuracy: with exact derivations (P90Q = 1) the base holds; the further
// estimates strayed, the smaller the returned threshold, so a plan resting
// on shaky estimates re-optimizes sooner.
//
// The calibration divides by the P90 finite q-error, not the maximum, so a
// single outlier does not zero the threshold and turn every drift into a
// re-optimization. It still returns 0 — re-optimize on any drift — when
// there is no usable finite evidence, or when some derivation is broken
// outright (estimate 0 against a non-zero actual). Unbounded q-errors on
// empty SEs (actual 0, estimate > 0 — over-prediction noise at small
// scales) and vacuous 0/0 targets are excluded from the evidence rather
// than collapsing the threshold.
func (f *Feedback) CalibratedThreshold(base float64) float64 {
	if f == nil || f.Derivable == 0 {
		return 0
	}
	if f.Unbounded > f.UnboundedEmpty {
		// A derivation claimed an SE empty that was not: broken, not shaky.
		return 0
	}
	if f.P90Q <= 0 {
		// Only vacuous or empty-SE evidence: the derivations went untested.
		return 0
	}
	q := f.P90Q
	if q < 1 {
		q = 1
	}
	return base / q
}

// ReplanThreshold widens a base mid-run replan threshold by the plan-time
// estimate inaccuracy: a boundary actual deviating within the q-error
// envelope the plan was already justified under is not news, so the
// adaptive trigger only fires beyond it — the de-flapping counterpart of
// CalibratedThreshold (which tightens the between-run drift trigger).
// Absent or untested feedback keeps the base.
func (f *Feedback) ReplanThreshold(base float64) float64 {
	if f == nil || f.P90Q <= 1 {
		return base
	}
	return base * f.P90Q
}

// TripsReplan returns the first report, in the feedback's deterministic
// order, whose evidence refutes its estimate at the given q-error
// threshold: a finite q-error above it, or an estimate of zero against a
// non-zero actual. Vacuous 0/0 targets and over-predicted empty SEs never
// trip — they are exactly the flapping inputs the calibration excludes.
func (f *Feedback) TripsReplan(threshold float64) (SEReport, bool) {
	if f == nil {
		return SEReport{}, false
	}
	for _, r := range f.SEs {
		if !r.Derivable || r.Vacuous {
			continue
		}
		if math.IsInf(r.QError, 1) {
			if r.Actual > 0 {
				return r, true
			}
			continue
		}
		if r.QError > threshold {
			return r, true
		}
	}
	return SEReport{}, false
}

// ShouldReoptimize applies the calibrated threshold to a measured drift:
// the data-driven re-optimization trigger for the paper's "at each run or
// some other user defined interval" loop.
func (f *Feedback) ShouldReoptimize(d stats.Drift, base float64) bool {
	return d.Exceeds(f.CalibratedThreshold(base))
}

// Render formats the report as a deterministic fixed-order text table (no
// timing, no map iteration).
func (f *Feedback) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "estimate feedback: %d/%d targets derivable", f.Derivable, f.Total)
	if f.Derivable > 0 {
		fmt.Fprintf(&sb, ", max q-error %s, mean %s", fmtQ(f.MaxQ), fmtQ(f.MeanQ))
		if f.P90Q > 0 {
			fmt.Fprintf(&sb, ", p90 %s", fmtQ(f.P90Q))
		}
		if f.Unbounded > 0 {
			fmt.Fprintf(&sb, ", %d unbounded", f.Unbounded)
			if f.UnboundedEmpty > 0 {
				fmt.Fprintf(&sb, " (%d on empty SEs)", f.UnboundedEmpty)
			}
		}
		if f.Vacuous > 0 {
			fmt.Fprintf(&sb, ", %d vacuous", f.Vacuous)
		}
	}
	sb.WriteString("\n")
	for _, r := range f.SEs {
		if !r.Derivable {
			fmt.Fprintf(&sb, "  blk%d %-28s actual %-10d not derivable\n", r.Block, r.Label, r.Actual)
			continue
		}
		tier := ""
		if r.Tier == "approx" {
			tier = " (approx)"
		}
		fmt.Fprintf(&sb, "  blk%d %-28s actual %-10d est %-10d q %-8s %s%s\n",
			r.Block, r.Label, r.Actual, r.Estimate, fmtQ(r.QError), r.Rule, tier)
	}
	if len(f.Rules) > 0 {
		sb.WriteString("  rule accuracy:\n")
		for _, ra := range f.Rules {
			fmt.Fprintf(&sb, "    %-10s n=%-4d maxQ %-8s meanQ %s\n", ra.Rule, ra.Count, fmtQ(ra.MaxQ), fmtQ(ra.MeanQ))
		}
	}
	return sb.String()
}

func fmtQ(q float64) string {
	if math.IsInf(q, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.4g", q)
}
