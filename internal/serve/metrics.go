package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// metrics aggregates the daemon's counters and per-workflow gauges. The
// rendering is the Prometheus text exposition format (counters and gauges
// only, no dependency needed) with sorted keys, so /metrics output is
// deterministic and greppable from the smoke test.
type metrics struct {
	mu sync.Mutex

	requests      map[string]int64 // per endpoint
	catalogHits   int64            // optimize/estimate found the workflow's statistics
	catalogMisses int64
	cacheHits     int64 // response served from the solution cache
	cacheMisses   int64
	solves        int64 // actual solver executions (post-singleflight)
	shared        int64 // requests that piggybacked on an in-flight solve
	invalidations int64 // cached solutions dropped by drift past threshold
	observes      int64
	sheds         int64 // requests shed by admission control (typed 429s)
	evictions     int64 // LRU entries dropped to stay within the byte budget
	redirects     int64 // requests 307-redirected to their shard owner
	proxied       int64 // requests proxied to their shard owner
	warmed        int64 // workflows preloaded by the warm-start path

	generation map[string]int64   // per workflow: latest catalog generation
	driftMax   map[string]float64 // per workflow: last upload's max relative drift
	qerrMax    map[string]float64 // per workflow: max q-error of prev estimates vs new observations
	// payloadBytes is each workflow's last /v1/observe body size;
	// payloadShrink is the previous upload's size over the current one
	// (> 1 when uploads got smaller, e.g. a producer switching to the
	// sketch-backed approximate tier).
	payloadBytes  map[string]int64
	payloadShrink map[string]float64
}

func newMetrics() *metrics {
	return &metrics{
		requests:      make(map[string]int64),
		generation:    make(map[string]int64),
		driftMax:      make(map[string]float64),
		qerrMax:       make(map[string]float64),
		payloadBytes:  make(map[string]int64),
		payloadShrink: make(map[string]float64),
	}
}

func (m *metrics) request(endpoint string) {
	m.mu.Lock()
	m.requests[endpoint]++
	m.mu.Unlock()
}

func (m *metrics) catalog(hit bool) {
	m.mu.Lock()
	if hit {
		m.catalogHits++
	} else {
		m.catalogMisses++
	}
	m.mu.Unlock()
}

func (m *metrics) cache(hit bool) {
	m.mu.Lock()
	if hit {
		m.cacheHits++
	} else {
		m.cacheMisses++
	}
	m.mu.Unlock()
}

func (m *metrics) solve(sharedFlight bool) {
	m.mu.Lock()
	if sharedFlight {
		m.shared++
	} else {
		m.solves++
	}
	m.mu.Unlock()
}

func (m *metrics) invalidate(n int64) {
	m.mu.Lock()
	m.invalidations += n
	m.mu.Unlock()
}

func (m *metrics) shed() {
	m.mu.Lock()
	m.sheds++
	m.mu.Unlock()
}

func (m *metrics) evict(n int64) {
	m.mu.Lock()
	m.evictions += n
	m.mu.Unlock()
}

func (m *metrics) shard(proxied bool) {
	m.mu.Lock()
	if proxied {
		m.proxied++
	} else {
		m.redirects++
	}
	m.mu.Unlock()
}

func (m *metrics) warm() {
	m.mu.Lock()
	m.warmed++
	m.mu.Unlock()
}

func (m *metrics) observe(workflow string, generation int, driftMax float64, payload int64) {
	m.mu.Lock()
	m.observes++
	m.generation[workflow] = int64(generation)
	m.driftMax[workflow] = driftMax
	if prev := m.payloadBytes[workflow]; prev > 0 && payload > 0 {
		m.payloadShrink[workflow] = float64(prev) / float64(payload)
	}
	m.payloadBytes[workflow] = payload
	m.mu.Unlock()
}

func (m *metrics) qerror(workflow string, q float64) {
	m.mu.Lock()
	m.qerrMax[workflow] = q
	m.mu.Unlock()
}

// render writes the exposition text. All map iterations sort their keys:
// byte-identical output for identical state.
func (m *metrics) render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ep := range sortedKeys(m.requests) {
		fmt.Fprintf(w, "etlopt_serve_requests_total{endpoint=%q} %d\n", ep, m.requests[ep])
	}
	fmt.Fprintf(w, "etlopt_serve_catalog_hits_total %d\n", m.catalogHits)
	fmt.Fprintf(w, "etlopt_serve_catalog_misses_total %d\n", m.catalogMisses)
	fmt.Fprintf(w, "etlopt_serve_cache_hits_total %d\n", m.cacheHits)
	fmt.Fprintf(w, "etlopt_serve_cache_misses_total %d\n", m.cacheMisses)
	fmt.Fprintf(w, "etlopt_serve_solves_total %d\n", m.solves)
	fmt.Fprintf(w, "etlopt_serve_solves_shared_total %d\n", m.shared)
	fmt.Fprintf(w, "etlopt_serve_invalidations_total %d\n", m.invalidations)
	fmt.Fprintf(w, "etlopt_serve_observe_total %d\n", m.observes)
	fmt.Fprintf(w, "etlopt_serve_sheds_total %d\n", m.sheds)
	fmt.Fprintf(w, "etlopt_serve_evictions_total %d\n", m.evictions)
	fmt.Fprintf(w, "etlopt_serve_shard_redirects_total %d\n", m.redirects)
	fmt.Fprintf(w, "etlopt_serve_shard_proxied_total %d\n", m.proxied)
	fmt.Fprintf(w, "etlopt_serve_warmed_total %d\n", m.warmed)
	for _, wf := range sortedKeys(m.generation) {
		fmt.Fprintf(w, "etlopt_serve_catalog_generation{workflow=%q} %d\n", wf, m.generation[wf])
	}
	for _, wf := range sortedKeys(m.driftMax) {
		fmt.Fprintf(w, "etlopt_serve_drift_max_rel{workflow=%q} %g\n", wf, m.driftMax[wf])
	}
	for _, wf := range sortedKeys(m.qerrMax) {
		fmt.Fprintf(w, "etlopt_serve_qerror_max{workflow=%q} %g\n", wf, m.qerrMax[wf])
	}
	for _, wf := range sortedKeys(m.payloadBytes) {
		fmt.Fprintf(w, "etlopt_serve_observe_payload_bytes{workflow=%q} %d\n", wf, m.payloadBytes[wf])
	}
	for _, wf := range sortedKeys(m.payloadShrink) {
		fmt.Fprintf(w, "etlopt_serve_observe_payload_shrink{workflow=%q} %g\n", wf, m.payloadShrink[wf])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
