package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/suite"
)

// The golden distributed-equivalence suite: a distributed run must be
// byte-identical to a single-process run — sinks, materialized outputs,
// observed statistics, work metric — whatever the fault pattern: a worker
// SIGKILLed mid-run, deterministic network drops/delays/truncations, a
// frozen worker whose lease expires, or every worker lost (which must
// complete in-process from the last checkpoint, never partially).

const distScale = 0.002

// distWorkflows are the multi-block suite workflows the golden tests
// exercise (2, 3 and 2 blocks — enough for real scheduling, reassignment
// and checkpoint handoff, without join explosions that would dwarf the
// wire cap).
var distWorkflows = []int{6, 8, 15}

// startWorker serves a fresh Worker over httptest.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewWorker().Handler())
	t.Cleanup(srv.Close)
	return srv
}

// killSwitch kills its server right after it finishes serving a block-run
// request, emulating a worker SIGKILLed mid-run: completed work was
// already delivered, every later connection is refused.
type killSwitch struct {
	once sync.Once
	srv  *httptest.Server
}

func (k *killSwitch) maybeKill(path string) {
	if path != "/v1/worker/run" {
		return
	}
	k.once.Do(func() {
		go func() {
			k.srv.CloseClientConnections()
			k.srv.Close()
		}()
	})
}

// startKillableWorker serves a Worker that dies after its first completed
// block.
func startKillableWorker(t *testing.T) *httptest.Server {
	t.Helper()
	wk := NewWorker()
	ks := &killSwitch{}
	h := wk.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(w, r)
		ks.maybeKill(r.URL.Path)
	}))
	ks.srv = srv
	t.Cleanup(srv.Close)
	return srv
}

// startFreezableWorker serves a Worker that freezes — run and health
// requests hang — after its first completed block: the hung-worker case
// only lease expiry can detect.
func startFreezableWorker(t *testing.T) *httptest.Server {
	t.Helper()
	wk := NewWorker()
	var once sync.Once
	frozen := make(chan struct{})
	release := make(chan struct{})
	h := wk.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-frozen:
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		default:
		}
		h.ServeHTTP(w, r)
		if r.URL.Path == "/v1/worker/run" {
			once.Do(func() { close(frozen) })
		}
	}))
	t.Cleanup(func() {
		close(release)
		srv.Close()
	})
	return srv
}

// distConfig builds a run configuration dispatching to the given workers.
func distConfig(t *testing.T, wf int, streaming bool, addrs []string, tune func(*CoordinatorOptions)) core.Config {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Streaming = streaming
	opt := CoordinatorOptions{Addrs: addrs}
	if tune != nil {
		tune(&opt)
	}
	coord, err := NewCoordinator(RunSpec{WF: wf, Scale: distScale, Streaming: streaming, CSS: cfg.CSS}, opt)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	cfg.Dispatcher = coord
	return cfg
}

// runCycleOf executes one optimization cycle and returns its instrumented
// run.
func runCycleOf(t *testing.T, wf int, cfg core.Config) *engine.Result {
	t.Helper()
	w, err := suite.Get(wf)
	if err != nil {
		t.Fatalf("suite.Get(%d): %v", wf, err)
	}
	cy, err := core.RunCtx(context.Background(), w.Graph, w.Catalog, w.Data(distScale), cfg)
	if err != nil {
		t.Fatalf("wf%02d run: %v", wf, err)
	}
	return cy.Observed
}

// localRun is the single-process reference execution.
func localRun(t *testing.T, wf int, streaming bool) *engine.Result {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Streaming = streaming
	return runCycleOf(t, wf, cfg)
}

// storeBytes renders an observed store into its canonical v2 byte form.
func storeBytes(t *testing.T, r *engine.Result) []byte {
	t.Helper()
	if r.Observed == nil {
		return nil
	}
	var buf bytes.Buffer
	if _, err := r.Observed.WriteTo(&buf); err != nil {
		t.Fatalf("store WriteTo: %v", err)
	}
	return buf.Bytes()
}

// assertRunsEqual is the golden comparison: sinks, materialized outputs,
// observed statistics (byte-level) and the work metric must match exactly.
func assertRunsEqual(t *testing.T, name string, want, got *engine.Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Sinks, got.Sinks) {
		t.Errorf("%s: sinks differ", name)
	}
	if !reflect.DeepEqual(want.Materialized, got.Materialized) {
		t.Errorf("%s: materialized outputs differ", name)
	}
	if want.Rows != got.Rows {
		t.Errorf("%s: work metric differs: want %d rows, got %d", name, want.Rows, got.Rows)
	}
	if !bytes.Equal(storeBytes(t, want), storeBytes(t, got)) {
		t.Errorf("%s: observed statistics bytes differ", name)
	}
}

// engineName labels the matrix legs.
func engineName(streaming bool) string {
	if streaming {
		return "stream"
	}
	return "batch"
}

// TestDistributedEquivalenceWorkerKilledMidRun is the acceptance golden:
// two workers, one SIGKILLed after its first completed block, under
// deterministic network faults — the distributed run must be
// byte-identical to the single-process run on both engines.
func TestDistributedEquivalenceWorkerKilledMidRun(t *testing.T) {
	for _, wf := range distWorkflows {
		for _, streaming := range []bool{false, true} {
			name := engineName(streaming)
			t.Run(name+"/wf"+itoa2(wf), func(t *testing.T) {
				want := localRun(t, wf, streaming)
				victim := startKillableWorker(t)
				survivor := startWorker(t)
				cfg := distConfig(t, wf, streaming, []string{victim.URL, survivor.URL}, func(o *CoordinatorOptions) {
					o.Faults = faults.New(11, 1, 1, faults.Network)
				})
				got := runCycleOf(t, wf, cfg)
				assertRunsEqual(t, name, want, got)
				if got.Dist == nil {
					t.Fatal("distributed run carries no DistReport")
				}
				if got.Dist.FellBack {
					t.Errorf("run fell back in-process (%s); a surviving worker should have absorbed the blocks", got.Dist.Reason)
				}
				if len(got.Dist.Remote) == 0 {
					t.Error("no blocks executed remotely")
				}
			})
		}
	}
}

// TestDistributedAllWorkersLostFallsBack kills every worker mid-run: the
// coordinator must finish in-process from the last checkpoint and report
// the degradation — outputs still byte-identical, never partial.
func TestDistributedAllWorkersLostFallsBack(t *testing.T) {
	for _, streaming := range []bool{false, true} {
		name := engineName(streaming)
		t.Run(name, func(t *testing.T) {
			const wf = 8 // 3 blocks: remote progress, then local completion
			want := localRun(t, wf, streaming)
			a := startKillableWorker(t)
			b := startKillableWorker(t)
			cfg := distConfig(t, wf, streaming, []string{a.URL, b.URL}, nil)
			got := runCycleOf(t, wf, cfg)
			assertRunsEqual(t, name, want, got)
			d := got.Dist
			if d == nil {
				t.Fatal("distributed run carries no DistReport")
			}
			if !d.FellBack {
				t.Fatal("expected the run to fall back in-process after losing every worker")
			}
			if d.Reason == "" {
				t.Error("fallback carries no reason")
			}
			if len(d.Remote)+len(d.Local) == 0 {
				t.Error("report lists no executed blocks")
			}
			if len(d.LostWorkers) != 2 {
				t.Errorf("want 2 lost workers, got %v", d.LostWorkers)
			}
			// Never a partial result: every sink of the local reference is
			// present and full.
			for name, tbl := range want.Sinks {
				g, ok := got.Sinks[name]
				if !ok || len(g.Rows) != len(tbl.Rows) {
					t.Errorf("sink %q incomplete after fallback", name)
				}
			}
		})
	}
}

// TestDistributedNetworkFaultMatrix runs the Network fault kind across its
// modes: transient faults (drop/delay/truncate per site hash) must be
// absorbed by dispatch retry, and permanent ones must degrade to the
// in-process fallback — byte-identical outputs either way.
func TestDistributedNetworkFaultMatrix(t *testing.T) {
	const wf = 8 // 3 blocks: three distinct "net:block:<idx>" fault sites
	want := localRun(t, wf, false)

	t.Run("transient", func(t *testing.T) {
		// Several seeds so the mode hash covers drop, delay and truncate
		// across the workflow's block sites.
		for _, seed := range []uint64{1, 2, 3, 7, 11} {
			inj := faults.New(seed, 1, 1, faults.Network)
			w1, w2 := startWorker(t), startWorker(t)
			cfg := distConfig(t, wf, false, []string{w1.URL, w2.URL}, func(o *CoordinatorOptions) {
				o.Faults = inj
			})
			got := runCycleOf(t, wf, cfg)
			assertRunsEqual(t, "transient", want, got)
			if got.Dist.FellBack {
				t.Errorf("seed %d: transient network faults must not force a fallback (%s)", seed, got.Dist.Reason)
			}
		}
	})

	t.Run("permanent", func(t *testing.T) {
		// transient=0 faults every attempt: dispatch exhausts its budget
		// and the run must complete locally, whole.
		inj := faults.New(5, 1, 0, faults.Network)
		w1, w2 := startWorker(t), startWorker(t)
		cfg := distConfig(t, wf, false, []string{w1.URL, w2.URL}, func(o *CoordinatorOptions) {
			o.Faults = inj
		})
		got := runCycleOf(t, wf, cfg)
		assertRunsEqual(t, "permanent", want, got)
		if !got.Dist.FellBack {
			t.Error("permanent network faults should degrade to the in-process fallback")
		}
	})
}

// startOversizeWorker answers health but returns a response body past the
// wire cap for every block run — the deterministic-undeliverable case.
func startOversizeWorker(t *testing.T) *httptest.Server {
	t.Helper()
	big := bytes.Repeat([]byte{'x'}, maxUploadBytes+1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/worker/health" {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write(big)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestDistributedOversizeResponseFallsBack pins the wire-cap guard: a block
// whose payload cannot cross the wire whole is deterministically
// undeliverable, so the run must complete in-process — no retry burn, no
// silent truncation, outputs identical.
func TestDistributedOversizeResponseFallsBack(t *testing.T) {
	const wf = 6
	want := localRun(t, wf, false)
	big := startOversizeWorker(t)
	cfg := distConfig(t, wf, false, []string{big.URL}, nil)
	got := runCycleOf(t, wf, cfg)
	assertRunsEqual(t, "oversize", want, got)
	if got.Dist == nil || !got.Dist.FellBack {
		t.Fatal("oversized worker response should degrade to the in-process fallback")
	}
	if !strings.Contains(got.Dist.Reason, "wire cap") {
		t.Errorf("fallback reason should name the wire cap, got %q", got.Dist.Reason)
	}
}

// TestDistributedHungWorkerLeaseExpiry freezes a worker mid-run (requests
// hang, health probes included): only lease expiry can reclaim its block,
// cancel the in-flight request and reassign — outputs stay identical.
func TestDistributedHungWorkerLeaseExpiry(t *testing.T) {
	const wf = 8
	want := localRun(t, wf, false)
	frozen := startFreezableWorker(t)
	healthy := startWorker(t)
	cfg := distConfig(t, wf, false, []string{frozen.URL, healthy.URL}, func(o *CoordinatorOptions) {
		o.HeartbeatEvery = 50 * time.Millisecond
		o.LeaseTTL = 300 * time.Millisecond
	})
	got := runCycleOf(t, wf, cfg)
	assertRunsEqual(t, "hung", want, got)
	d := got.Dist
	if d == nil {
		t.Fatal("no DistReport")
	}
	if d.FellBack {
		t.Errorf("healthy worker should have absorbed the frozen worker's blocks (fell back: %s)", d.Reason)
	}
	lostFrozen := false
	for _, addr := range d.LostWorkers {
		if addr == frozen.URL {
			lostFrozen = true
		}
	}
	if !lostFrozen && len(d.Remote) > 1 {
		// The frozen worker only shows as lost if it was dealt a second
		// block; with one block total it freezes after the run finished.
		t.Errorf("frozen worker %s not marked lost (lost: %v)", frozen.URL, d.LostWorkers)
	}
}

// TestDistributedUninstrumentedPlansRun covers the optimized-plans leg
// (plans shipped per block, no instrumentation): engine-level dispatch
// with explicit join trees must match the local optimized run.
func TestDistributedUninstrumentedPlansRun(t *testing.T) {
	const wf = 8
	w, err := suite.Get(wf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cy, err := core.RunCtx(context.Background(), w.Graph, w.Catalog, w.Data(distScale), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cy.RunOptimizedCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := startWorker(t), startWorker(t)
	dcfg := distConfig(t, wf, false, []string{w1.URL, w2.URL}, nil)
	dcy, err := core.RunCtx(context.Background(), w.Graph, w.Catalog, w.Data(distScale), dcfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dcy.RunOptimizedCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertRunsEqual(t, "optimized", want, got)
	if got.Dist == nil || len(got.Dist.Remote) == 0 {
		t.Error("optimized distributed run executed nothing remotely")
	}
}

// TestCoordinatorRejectsEmptyFleet pins the configuration guard.
func TestCoordinatorRejectsEmptyFleet(t *testing.T) {
	if _, err := NewCoordinator(RunSpec{WF: 1, Scale: 1}, CoordinatorOptions{}); err == nil {
		t.Fatal("NewCoordinator accepted an empty worker fleet")
	}
}

// TestDistributedRejectsMetrics pins the config guard: distributed +
// CollectMetrics is a configuration error, not a silent local run.
func TestDistributedRejectsMetrics(t *testing.T) {
	w1 := startWorker(t)
	cfg := distConfig(t, 6, false, []string{w1.URL}, nil)
	cfg.CollectMetrics = true
	wf, err := suite.Get(6)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.RunCtx(context.Background(), wf.Graph, wf.Catalog, wf.Data(distScale), cfg)
	if err == nil || !strings.Contains(err.Error(), "CollectMetrics") {
		t.Fatalf("want the CollectMetrics incompatibility error, got %v", err)
	}
}

// itoa2 renders a workflow id as two digits (test names match suite
// naming).
func itoa2(n int) string {
	return string([]byte{byte('0' + n/10), byte('0' + n%10)})
}
