package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/stats"
)

// Coordinator is the scheduling side of distributed block dispatch: it
// implements engine.BlockDispatcher over a fleet of Worker HTTP servers.
//
// Fault tolerance is lease-based. Every dispatched block holds a lease
// that only successful health probes of its worker renew; when probes fail
// past the lease TTL — the worker is dead, frozen, or partitioned — the
// in-flight request is cancelled, the worker is marked lost, and the block
// is reassigned to another live worker after a capped exponential backoff
// (the engine's retry-backoff semantics: doubling from the base, saturated
// at 100ms). Workers are deterministic executors, so a block that ran
// twice — a lost ACK, a reassignment after a kill — returns byte-identical
// payloads, and the engine's scheduler commits exactly one of them.
//
// When every worker is lost, or one block exhausts its dispatch budget,
// the coordinator reports engine.ErrWorkersLost and the engine finishes
// the run in-process from its last checkpoint: degraded placement, never a
// partial result.
type Coordinator struct {
	run RunSpec
	opt CoordinatorOptions
}

// RunSpec is what every block request of one distributed run shares: the
// deterministic dataset pin (suite workflow + scale) and the engine knobs
// workers must mirror for byte-identical execution.
type RunSpec struct {
	// WF and Scale pin the suite workflow and its generated data.
	WF    int
	Scale float64
	// Streaming, RowMode, Workers, MaxRows, Faults, RetryMax and
	// RetryBackoff mirror the coordinator-side engine configuration.
	Streaming    bool
	RowMode      bool
	Workers      int
	MaxRows      int64
	Faults       string
	RetryMax     int
	RetryBackoff time.Duration
	// CSS rebuilds the statistic universe on instrumented workers.
	CSS css.Options
}

// CoordinatorOptions tune dispatch fault tolerance.
type CoordinatorOptions struct {
	// Addrs are the worker base URLs ("http://host:port"); at least one is
	// required.
	Addrs []string
	// HeartbeatEvery is the health-probe period while a block is leased
	// (default 200ms).
	HeartbeatEvery time.Duration
	// LeaseTTL is how long a lease survives without a successful probe
	// before the block is reclaimed and reassigned (default 2s).
	LeaseTTL time.Duration
	// DispatchRetryMax bounds attempts per block across workers (default
	// 3: the first try plus two reassignments).
	DispatchRetryMax int
	// RetryBackoff is the base delay between dispatch attempts, doubling
	// per retry, capped at 100ms (default 1ms — the engine's semantics).
	RetryBackoff time.Duration
	// Faults injects deterministic Network-kind faults into dispatches
	// (nil injects nothing). Sites are "net:block:<idx>", so the fault
	// pattern is independent of worker placement and timing.
	Faults *faults.Injector
	// Client overrides the HTTP client (default: a fresh client with no
	// global timeout; per-request contexts and leases bound every call).
	Client *http.Client
}

// coordinator timing defaults.
const (
	defaultHeartbeatEvery   = 200 * time.Millisecond
	defaultLeaseTTL         = 2 * time.Second
	defaultDispatchRetryMax = 3
	defaultDispatchBackoff  = time.Millisecond
	maxDispatchBackoff      = 100 * time.Millisecond
)

// NewCoordinator validates the options and returns a dispatcher.
func NewCoordinator(run RunSpec, opt CoordinatorOptions) (*Coordinator, error) {
	if len(opt.Addrs) == 0 {
		return nil, fmt.Errorf("serve: coordinator needs at least one worker address")
	}
	if opt.HeartbeatEvery <= 0 {
		opt.HeartbeatEvery = defaultHeartbeatEvery
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = defaultLeaseTTL
	}
	if opt.DispatchRetryMax <= 0 {
		opt.DispatchRetryMax = defaultDispatchRetryMax
	}
	if opt.RetryBackoff <= 0 {
		opt.RetryBackoff = defaultDispatchBackoff
	}
	if opt.Client == nil {
		opt.Client = &http.Client{}
	}
	return &Coordinator{run: run, opt: opt}, nil
}

// Lease is one entry of the coordinator's lease table: which worker holds
// which block, and until when without a renewing probe.
type Lease struct {
	ID       string
	Block    int
	Worker   string
	Deadline time.Time
	Expired  bool
}

// workerRef is one worker's live/lost state within a session.
type workerRef struct {
	addr string
	lost bool
}

// dispatchSession is one run's dispatch state: the worker fleet, the lease
// table and the reassignment accounting.
type dispatchSession struct {
	c    *Coordinator
	spec *engine.DispatchSpec
	base WorkerRunRequest

	mu         sync.Mutex
	workers    []*workerRef
	next       int
	leaseSeq   int
	leases     map[string]*Lease
	reassigned int64
	lostOrder  []string
}

// DispatchRun opens a session: probe the fleet once and refuse to open
// (wrapping engine.ErrWorkersLost) when nobody answers — the engine then
// runs fully in-process.
func (c *Coordinator) DispatchRun(ctx context.Context, spec *engine.DispatchSpec) (engine.RunDispatch, error) {
	s := &dispatchSession{
		c:      c,
		spec:   spec,
		leases: make(map[string]*Lease),
		base: WorkerRunRequest{
			WF:             c.run.WF,
			Scale:          c.run.Scale,
			Streaming:      c.run.Streaming,
			RowMode:        c.run.RowMode,
			Workers:        c.run.Workers,
			MaxRows:        c.run.MaxRows,
			Faults:         c.run.Faults,
			RetryMax:       c.run.RetryMax,
			RetryBackoffNs: int64(c.run.RetryBackoff),
			CSS:            c.run.CSS,
			Instrument:     spec.Instrument,
			AnyPoint:       spec.AnyPoint,
			Observe:        spec.Observe,
			Plans:          spec.Plans,
		},
	}
	alive := 0
	for _, addr := range c.opt.Addrs {
		w := &workerRef{addr: addr}
		if err := s.probe(ctx, w); err != nil {
			w.lost = true
			s.lostOrder = append(s.lostOrder, addr)
		} else {
			alive++
		}
		s.workers = append(s.workers, w)
	}
	if alive == 0 {
		return nil, fmt.Errorf("serve: no reachable worker among %d: %w", len(c.opt.Addrs), engine.ErrWorkersLost)
	}
	return s, nil
}

// Slots bounds in-flight blocks to the fleet size.
func (s *dispatchSession) Slots() int { return len(s.c.opt.Addrs) }

// Summary reports the session's fault accounting.
func (s *dispatchSession) Summary() engine.DistSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return engine.DistSummary{
		Reassigned:  s.reassigned,
		LostWorkers: append([]string(nil), s.lostOrder...),
	}
}

// Leases snapshots the lease table (diagnostics and tests).
func (s *dispatchSession) Leases() []Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Lease, 0, len(s.leases))
	for _, l := range s.leases {
		out = append(out, *l)
	}
	return out
}

// permanentError marks a worker-reported block-execution error: it is
// deterministic, so reassignment cannot help and the engine must surface
// it as a *BlockFailure exactly like an in-process run would.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// RunBlock dispatches one block: pick a live worker (round-robin), hold a
// heartbeat-renewed lease over the request, and on infrastructure failure
// back off and reassign — up to the dispatch retry budget, after which the
// block is declared undeliverable (engine.ErrWorkersLost) and the engine
// falls back in-process.
func (s *dispatchSession) RunBlock(ctx context.Context, block int, upstream map[int]*data.Table) (*engine.RemoteBlock, error) {
	body, err := s.requestBody(block, upstream)
	if err != nil {
		return nil, err
	}
	site := fmt.Sprintf("net:block:%d", block)
	var lastErr error
	for attempt := 0; attempt < s.c.opt.DispatchRetryMax; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			s.mu.Lock()
			s.reassigned++
			s.mu.Unlock()
			if err := dispatchSleep(ctx, s.c.opt.RetryBackoff, attempt-1); err != nil {
				return nil, err
			}
		}
		w := s.pickLive()
		if w == nil {
			return nil, fmt.Errorf("serve: block %d: all workers lost: %w", block, engine.ErrWorkersLost)
		}
		mode, ferr := s.c.opt.Faults.NetworkAt(site, attempt)
		if ferr != nil && mode == faults.NetDrop {
			// The request never leaves the coordinator; the worker stays
			// live and the next attempt retries the exchange.
			lastErr = fmt.Errorf("serve: block %d attempt %d: %w", block, attempt, ferr)
			continue
		}
		if ferr != nil && mode == faults.NetDelay {
			// A delayed exchange still happens; the pause exercises
			// lease/heartbeat timing without consuming the attempt.
			if err := dispatchSleep(ctx, s.c.opt.HeartbeatEvery, 0); err != nil {
				return nil, err
			}
		}
		truncate := ferr != nil && mode == faults.NetTruncate
		rb, err := s.tryWorker(ctx, w, block, body, truncate)
		if err == nil {
			return rb, nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return nil, perm.err
		}
		if errors.Is(err, engine.ErrWorkersLost) {
			// Deterministically undeliverable (e.g. the response exceeds
			// the wire cap): no retry can change it, degrade to the
			// in-process fallback immediately.
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("serve: block %d undeliverable after %d attempts (last: %v): %w",
		block, s.c.opt.DispatchRetryMax, lastErr, engine.ErrWorkersLost)
}

// requestBody marshals the block request (lease id is attached per
// attempt via header, keeping the body — and any retry of it — identical).
func (s *dispatchSession) requestBody(block int, upstream map[int]*data.Table) ([]byte, error) {
	req := s.base
	req.Block = block
	if len(upstream) > 0 {
		req.Upstream = make(map[int][]byte, len(upstream))
		for idx, tbl := range upstream {
			blob, err := encodeTable(tbl)
			if err != nil {
				return nil, err
			}
			req.Upstream[idx] = blob
		}
	}
	return json.Marshal(&req)
}

// pickLive returns the next live worker round-robin, nil when none.
func (s *dispatchSession) pickLive() *workerRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.workers)
	for i := 0; i < n; i++ {
		w := s.workers[(s.next+i)%n]
		if !w.lost {
			s.next = (s.next + i + 1) % n
			return w
		}
	}
	return nil
}

// markLost flags a worker dead for the rest of the session.
func (s *dispatchSession) markLost(w *workerRef) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !w.lost {
		w.lost = true
		s.lostOrder = append(s.lostOrder, w.addr)
	}
}

// tryWorker executes one leased dispatch attempt against one worker.
func (s *dispatchSession) tryWorker(ctx context.Context, w *workerRef, block int, body []byte, truncate bool) (*engine.RemoteBlock, error) {
	lease := s.grantLease(block, w.addr)
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		s.heartbeat(lctx, w, lease, cancel)
	}()
	defer func() { cancel(); <-hbDone }()

	req, err := http.NewRequestWithContext(lctx, http.MethodPost, w.addr+"/v1/worker/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Etlopt-Lease", lease.ID)
	resp, err := s.c.opt.Client.Do(req)
	if err != nil {
		// Connection-level failure or lease-expiry cancellation: the
		// worker is gone (or unreachable, which is the same thing to the
		// lease protocol).
		s.markLost(w)
		if s.leaseExpired(lease.ID) {
			return nil, fmt.Errorf("serve: lease %s on %s expired for block %d: %w", lease.ID, w.addr, block, err)
		}
		return nil, fmt.Errorf("serve: block %d on %s: %w", block, w.addr, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxUploadBytes+1))
	if err != nil {
		s.markLost(w)
		return nil, fmt.Errorf("serve: block %d on %s: response: %w", block, w.addr, err)
	}
	if len(payload) > maxUploadBytes {
		// The block's payload cannot cross the wire whole. That is a
		// property of the block, not the worker: every retry would truncate
		// identically, so the run must finish this block in-process.
		return nil, fmt.Errorf("serve: block %d on %s: response exceeds the %d-byte wire cap: %w",
			block, w.addr, int64(maxUploadBytes), engine.ErrWorkersLost)
	}
	if truncate {
		// Injected lost ACK: the worker completed the block, but the
		// response is cut short before the coordinator can commit it. The
		// retry re-runs the block; determinism makes the second copy
		// byte-identical, and the engine commits only one.
		return nil, fmt.Errorf("serve: block %d on %s: %w", block, w.addr,
			&faults.Error{Kind: faults.Network, Site: fmt.Sprintf("net:block:%d", block), Transient: true})
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return decodeRemoteBlock(payload)
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// The worker ran the block and it failed deterministically (or the
		// request itself is invalid): reassignment cannot change the
		// outcome.
		return nil, &permanentError{err: fmt.Errorf("serve: block %d: worker %s: %s", block, w.addr, errorBody(payload))}
	default:
		s.markLost(w)
		return nil, fmt.Errorf("serve: block %d on %s: status %d: %s", block, w.addr, resp.StatusCode, errorBody(payload))
	}
}

// grantLease registers a lease for one dispatch attempt.
func (s *dispatchSession) grantLease(block int, worker string) *Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.leaseSeq++
	l := &Lease{
		ID:       fmt.Sprintf("lease-%04d", s.leaseSeq),
		Block:    block,
		Worker:   worker,
		Deadline: time.Now().Add(s.c.opt.LeaseTTL),
	}
	s.leases[l.ID] = l
	return l
}

// renewLease pushes a lease's deadline out after a successful probe.
func (s *dispatchSession) renewLease(id string, deadline time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.leases[id]; ok && !l.Expired {
		l.Deadline = deadline
	}
}

// expireLease marks a lease reclaimed; its block is free to reassign.
func (s *dispatchSession) expireLease(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.leases[id]; ok {
		l.Expired = true
	}
}

// leaseExpired reports whether the lease was reclaimed by expiry.
func (s *dispatchSession) leaseExpired(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[id]
	return ok && l.Expired
}

// heartbeat renews the lease while its worker keeps answering health
// probes; when the deadline passes without a successful probe, the lease
// expires and the in-flight request is cancelled, which surfaces as a
// reassignable failure in tryWorker.
func (s *dispatchSession) heartbeat(ctx context.Context, w *workerRef, lease *Lease, cancel context.CancelFunc) {
	t := time.NewTicker(s.c.opt.HeartbeatEvery)
	defer t.Stop()
	deadline := lease.Deadline
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.probe(ctx, w); err == nil {
				deadline = time.Now().Add(s.c.opt.LeaseTTL)
				s.renewLease(lease.ID, deadline)
			}
			if time.Now().After(deadline) {
				s.expireLease(lease.ID)
				cancel()
				return
			}
		}
	}
}

// probe is one health check, bounded by the heartbeat period.
func (s *dispatchSession) probe(ctx context.Context, w *workerRef) error {
	timeout := s.c.opt.HeartbeatEvery
	if timeout <= 0 {
		timeout = defaultHeartbeatEvery
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.addr+"/v1/worker/health", nil)
	if err != nil {
		return err
	}
	resp, err := s.c.opt.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: health probe of %s: status %d", w.addr, resp.StatusCode)
	}
	return nil
}

// decodeRemoteBlock parses a worker's 200 response into the engine's form.
func decodeRemoteBlock(payload []byte) (*engine.RemoteBlock, error) {
	var resp WorkerRunResponse
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, fmt.Errorf("serve: worker response: %w", err)
	}
	out, err := decodeTable(resp.Out)
	if err != nil {
		return nil, fmt.Errorf("serve: worker response: block output: %w", err)
	}
	rb := &engine.RemoteBlock{Out: out, Rows: resp.Rows, Retries: resp.Retries}
	if len(resp.Materialized) > 0 {
		rb.Materialized = make(map[string]*data.Table, len(resp.Materialized))
		for name, blob := range resp.Materialized {
			tbl, err := decodeTable(blob)
			if err != nil {
				return nil, fmt.Errorf("serve: worker response: materialized %q: %w", name, err)
			}
			rb.Materialized[name] = tbl
		}
	}
	if len(resp.Shard) > 0 {
		store, err := stats.ReadStore(bytes.NewReader(resp.Shard))
		if err != nil {
			return nil, fmt.Errorf("serve: worker response: stats shard: %w", err)
		}
		rb.Observed = store
	}
	for _, wf := range resp.Degraded {
		rb.Degraded = append(rb.Degraded, engine.FailedStat{Stat: wf.Stat, Err: fmt.Errorf("%s", wf.Err)})
	}
	return rb, nil
}

// errorBody extracts the {"error": ...} message from a worker reply.
func errorBody(payload []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(payload))
}

// dispatchSleep waits out the capped exponential backoff before a
// reassignment, honouring cancellation.
func dispatchSleep(ctx context.Context, base time.Duration, attempt int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d := base
	for i := 0; i < attempt && d < maxDispatchBackoff; i++ {
		d <<= 1
	}
	if d > maxDispatchBackoff || d <= 0 {
		d = maxDispatchBackoff
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// durationNs converts wire nanoseconds into a duration.
func durationNs(ns int64) time.Duration { return time.Duration(ns) }
