package serve

import (
	"context"
	"sort"

	"github.com/essential-stats/etlopt/internal/optimizer"
	"github.com/essential-stats/etlopt/internal/selector"
)

// Warm preloads the solution cache at boot: it pre-solves the default
// optimize and estimate requests for up to n cataloged workflows this
// daemon owns, hottest first. Hotness is approximated by the catalog
// generation — a workflow with more uploads has more runs behind it and
// is the likeliest to be asked about first. Warming goes through the same
// solved() path as live traffic, so a warmed entry is byte-identical to a
// served solve and respects the admission limiter.
//
// It returns how many workflows were warmed; solve failures (e.g. a
// partial store that cannot support a full optimization) skip the
// workflow rather than failing the boot.
func (s *Server) Warm(ctx context.Context, n int) int {
	if n <= 0 || s.opts.DisableCache {
		return 0
	}
	type cand struct {
		name string
		gen  int
	}
	var cands []cand
	for _, wf := range s.catalog.Workflows() {
		if _, ok := s.workflows[wf]; !ok {
			continue // cataloged by a foreign deployment, not servable here
		}
		if s.ring != nil && !s.ring.owns(wf) {
			continue // a peer owns it; warming it here would never be hit
		}
		if e, ok := s.catalog.Get(wf); ok {
			cands = append(cands, cand{name: wf, gen: e.Generation})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gen != cands[j].gen {
			return cands[i].gen > cands[j].gen
		}
		return cands[i].name < cands[j].name
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	warmed := 0
	for _, c := range cands {
		if ctx.Err() != nil {
			break
		}
		if s.warmOne(ctx, c.name) {
			warmed++
			s.metrics.warm()
		}
	}
	return warmed
}

// warmOne pre-solves one workflow's default requests; true when at least
// one solution landed in the cache.
func (s *Server) warmOne(ctx context.Context, name string) bool {
	entry, ok := s.catalog.Get(name)
	if !ok {
		return false
	}
	any := false
	oreq := optimizeRequest{Workflow: name, CostModel: "cout"}
	okey := "optimize|cout|partial=false"
	if _, _, err := s.solved(ctx, name, entry.Generation, okey, func() ([]byte, error) {
		return s.solveOptimize(oreq, optimizer.Cout, entry)
	}); err == nil {
		any = true
	}
	ereq := estimateRequest{Workflow: name, Method: "exact"}
	ekey := "estimate|exact|b0"
	if _, _, err := s.solved(ctx, name, entry.Generation, ekey, func() ([]byte, error) {
		return s.solveEstimate(ereq, selector.MethodExact, entry, true)
	}); err == nil {
		any = true
	}
	return any
}
