package serve

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// zeroReader yields zero bytes forever — an upload of unbounded size
// without allocating one.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// brokenBody fails mid-read, like a client that disconnected during the
// upload.
type brokenBody struct{}

func (brokenBody) Read([]byte) (int, error) { return 0, errors.New("connection reset by peer") }
func (brokenBody) Close() error             { return nil }

// TestObserveUploadErrorStatus: only an actually oversized body is 413; any
// other failure reading the upload is a 400. Before the fix, every read
// error — including a client disconnect — was mislabeled 413.
func TestObserveUploadErrorStatus(t *testing.T) {
	doc, _ := tinyWorkflow(t, 11, 600)
	srv, _ := newTestServer(t, doc, Options{})
	h := srv.Handler()

	// Oversized: one byte past the cap trips MaxBytesReader.
	over := io.LimitReader(zeroReader{}, maxUploadBytes+1)
	req := httptest.NewRequest(http.MethodPost, "/v1/observe?workflow=tiny", over)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: %d %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "upload exceeds") {
		t.Fatalf("413 body %q does not name the limit", rec.Body.String())
	}

	// Broken mid-upload: a read error that is NOT the size cap.
	req = httptest.NewRequest(http.MethodPost, "/v1/observe?workflow=tiny", nil)
	req.Body = brokenBody{}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("broken upload: %d, want 400 (was mislabeled 413 before the fix)", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "reading upload") {
		t.Fatalf("400 body %q", rec.Body.String())
	}
}

// TestUnknownWorkflowTyped: cssFor on a workflow with no document returns
// the typed error instead of panicking on the nil map entry, and the
// HTTP surface turns it into a 404.
func TestUnknownWorkflowTyped(t *testing.T) {
	doc, _ := tinyWorkflow(t, 11, 600)
	srv, _ := newTestServer(t, doc, Options{})
	_, err := srv.cssFor("ghost")
	var unknown *UnknownWorkflowError
	if !errors.As(err, &unknown) || unknown.Workflow != "ghost" {
		t.Fatalf("cssFor(ghost) = %v, want *UnknownWorkflowError", err)
	}
	if !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("error %q does not name the workflow", err)
	}
}
