package serve

import "sync"

// group is a minimal duplicate-suppression primitive (the well-known
// singleflight pattern, hand-rolled because the repository deliberately has
// no dependencies): concurrent Do calls with the same key run fn once and
// all receive its result. Solving a block's join order or a statistics
// selection is pure CPU over immutable inputs, so N identical concurrent
// requests must cost one solve, not N.
type group struct {
	mu sync.Mutex
	m  map[string]*call
}

type call struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Do runs fn under key, suppressing duplicates: callers that arrive while
// an identical call is in flight wait for it and share its result. The
// third return reports whether this caller shared another call's result
// (true) or executed fn itself (false).
func (g *group) Do(key string, fn func() (any, error)) (any, error, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &call{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, c.err, false
}
