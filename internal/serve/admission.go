package serve

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// DefaultSolveQueue bounds how many requests may wait for a solve slot
// when Options.MaxSolves is set and Options.SolveQueue is not.
const DefaultSolveQueue = 64

// BusyError reports that the daemon shed a request: every solve slot is
// occupied and the wait queue is full. Handlers map it to a typed 429
// with a Retry-After header — load shedding is a protocol answer, not a
// server fault.
type BusyError struct {
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("serve: solve capacity exhausted, retry after %s", e.RetryAfter)
}

// admission is the daemon's concurrent-solve limiter: a fixed number of
// solve slots plus a bounded wait queue. Requests beyond slots+queue are
// shed immediately with a BusyError instead of piling onto the daemon —
// backpressure the client can see, not latency it cannot.
//
// Only actual solver executions occupy a slot. Cache hits bypass
// admission entirely, and singleflight sharers wait on the one admitted
// flight, so N identical concurrent requests still cost one slot.
type admission struct {
	slots chan struct{} // nil = unlimited

	mu       sync.Mutex
	waiting  int
	maxWait  int
	inflight int
}

// newAdmission builds a limiter; maxSolves <= 0 means unlimited (every
// acquire succeeds immediately and nothing is ever shed).
func newAdmission(maxSolves, queue int) *admission {
	a := &admission{}
	if maxSolves > 0 {
		a.slots = make(chan struct{}, maxSolves)
		if queue < 0 {
			queue = DefaultSolveQueue
		}
		a.maxWait = queue
	}
	return a
}

// acquire claims a solve slot, waiting in the bounded queue if all slots
// are busy. It returns a release function on success; a *BusyError when
// the queue is full; or the context's error if cancelled while waiting.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	if a.slots == nil {
		a.mu.Lock()
		a.inflight++
		a.mu.Unlock()
		return a.releaseUnlimited, nil
	}
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.inflight++
		a.mu.Unlock()
		return a.release, nil
	default:
	}
	a.mu.Lock()
	if a.waiting >= a.maxWait {
		a.mu.Unlock()
		return nil, &BusyError{RetryAfter: time.Second}
	}
	a.waiting++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
	}()
	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.inflight++
		a.mu.Unlock()
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() {
	a.mu.Lock()
	a.inflight--
	a.mu.Unlock()
	<-a.slots
}

func (a *admission) releaseUnlimited() {
	a.mu.Lock()
	a.inflight--
	a.mu.Unlock()
}

// depth reports the current wait-queue depth and in-flight solve count
// (the /metrics gauges).
func (a *admission) depth() (waiting, inflight int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting, a.inflight
}
