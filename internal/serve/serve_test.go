package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// tinyWorkflow builds a small three-way join whose designed order is
// deliberately bad (the selective Region join comes last), so optimization
// has something to improve and the daemon's responses carry real content.
func tinyWorkflow(t *testing.T, seed int64, card int64) (*Document, engine.DB) {
	t.Helper()
	specs := []data.TableSpec{
		{Rel: "Orders", Card: card, Columns: []data.ColumnSpec{
			{Name: "oid", Serial: true},
			{Name: "lid", Domain: 20, Skew: 1.5},
			{Name: "rid", Domain: 15, Skew: 1.3},
		}},
		{Rel: "Log", Card: card * 2 / 3, Columns: []data.ColumnSpec{
			{Name: "lid", Domain: 20, Skew: 1.5},
		}},
		{Rel: "Region", Card: 8, Columns: []data.ColumnSpec{
			{Name: "rid", Domain: 15},
		}},
	}
	db := engine.DB{}
	cat := &workflow.Catalog{}
	for i, s := range specs {
		tbl := data.Generate(s, seed+int64(i))
		db[s.Rel] = tbl
		cat.Relations = append(cat.Relations, data.CatalogEntry(tbl, s))
	}
	b := workflow.NewBuilder("tiny")
	o := b.Source("Orders")
	l := b.Source("Log")
	r := b.Source("Region")
	j1 := b.Join(o, l, workflow.Attr{Rel: "Orders", Col: "lid"}, workflow.Attr{Rel: "Log", Col: "lid"})
	j2 := b.Join(j1, r, workflow.Attr{Rel: "Orders", Col: "rid"}, workflow.Attr{Rel: "Region", Col: "rid"})
	b.Sink(j2, "dw")
	return &Document{Graph: b.Graph(), Catalog: cat}, db
}

// observedStream runs one instrumented cycle and returns the saved
// statistics stream — exactly what `etlopt run -save-stats` uploads.
func observedStream(t *testing.T, doc *Document, db engine.DB) []byte {
	t.Helper()
	cy, err := core.Run(doc.Graph, doc.Catalog, db, core.DefaultConfig())
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	var buf bytes.Buffer
	if err := cy.SaveStats(&buf); err != nil {
		t.Fatalf("SaveStats: %v", err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, doc *Document, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	cat, err := OpenCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cat, map[string]*Document{"tiny": doc}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, url, contentType string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestServeObserveOptimizeRoundTrip(t *testing.T) {
	doc, db := tinyWorkflow(t, 11, 600)
	srv, ts := newTestServer(t, doc, Options{})
	stream := observedStream(t, doc, db)

	// Upload: first generation always flags re-optimization.
	resp, body := post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: %d %s", resp.StatusCode, body)
	}
	var obs observeResponse
	if err := json.Unmarshal(body, &obs); err != nil {
		t.Fatal(err)
	}
	if obs.Generation != 1 || obs.Count == 0 || !obs.Reoptimize {
		t.Fatalf("observe response %+v", obs)
	}

	// Optimize: must match a fresh OptimizeFromSaved over the same stream.
	req := []byte(`{"workflow":"tiny"}`)
	resp, body = post(t, ts.URL+"/v1/optimize", "application/json", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("first optimize X-Cache = %q", h)
	}
	var opt optimizeResponse
	if err := json.Unmarshal(body, &opt); err != nil {
		t.Fatal(err)
	}
	_, fresh, err := core.OptimizeFromSaved(doc.Graph, doc.Catalog, bytes.NewReader(stream), core.DefaultConfig())
	if err != nil {
		t.Fatalf("OptimizeFromSaved: %v", err)
	}
	if opt.TotalCost != fresh.TotalCost || opt.TotalInitialCost != fresh.TotalInitialCost {
		t.Fatalf("daemon costs (%v, %v) != fresh (%v, %v)",
			opt.TotalCost, opt.TotalInitialCost, fresh.TotalCost, fresh.TotalInitialCost)
	}
	for _, pj := range opt.Blocks {
		blk := srvBlock(t, srv, pj.Block)
		want := fresh.Plans[pj.Block].Tree.Render(blk)
		if pj.Optimized != want {
			t.Fatalf("block %d plan %q != fresh %q", pj.Block, pj.Optimized, want)
		}
	}
	if opt.Improvement < 1 {
		t.Fatalf("improvement %v < 1", opt.Improvement)
	}

	// Second identical request: cache hit, byte-identical body.
	resp, body2 := post(t, ts.URL+"/v1/optimize", "application/json", req)
	if h := resp.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("second optimize X-Cache = %q", h)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cache hit body differs from the solved body")
	}

	// Estimate: selection plus full coverage and derived cardinalities.
	resp, body = post(t, ts.URL+"/v1/estimate", "application/json", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d %s", resp.StatusCode, body)
	}
	var est estimateResponse
	if err := json.Unmarshal(body, &est); err != nil {
		t.Fatal(err)
	}
	if len(est.Selection.Observe) == 0 || est.Generation != 1 {
		t.Fatalf("estimate response %+v", est)
	}
	if est.Coverage == nil || est.Coverage.Derivable != est.Coverage.Total || len(est.Cardinalities) != est.Coverage.Total {
		t.Fatalf("coverage %+v with %d cardinalities", est.Coverage, len(est.Cardinalities))
	}

	// Un-drifted upload: generation advances, cached solutions stand.
	resp, body = post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", stream)
	if err := json.Unmarshal(body, &obs); err != nil {
		t.Fatal(err)
	}
	if obs.Generation != 2 || obs.Reoptimize || obs.Invalidated != 0 || obs.Drift.MaxRel != 0 {
		t.Fatalf("identical re-upload: %+v", obs)
	}
	if obs.QErrorMax > 1 {
		t.Fatalf("identical re-upload reports q-error %v", obs.QErrorMax)
	}
	resp, body2 = post(t, ts.URL+"/v1/optimize", "application/json", req)
	if h := resp.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("optimize after un-drifted upload X-Cache = %q (cache was invalidated?)", h)
	}

	// Drifted upload (different data): invalidates and re-selects.
	_, db2 := tinyWorkflow(t, 977, 1800)
	stream2 := observedStream(t, doc, db2)
	resp, body = post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", stream2)
	if err := json.Unmarshal(body, &obs); err != nil {
		t.Fatal(err)
	}
	if obs.Generation != 3 || !obs.Reoptimize || obs.Invalidated == 0 {
		t.Fatalf("drifted upload: %+v", obs)
	}
	if obs.Drift.MaxRel <= srv.opts.DriftThreshold {
		t.Fatalf("test data did not drift past the threshold: %+v", obs.Drift)
	}
	if obs.QErrorMax <= 1 {
		t.Fatalf("drifted upload should surface estimate error, q = %v", obs.QErrorMax)
	}
	resp, body = post(t, ts.URL+"/v1/optimize", "application/json", req)
	if h := resp.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("optimize after drifted upload X-Cache = %q", h)
	}
	if err := json.Unmarshal(body, &opt); err != nil {
		t.Fatal(err)
	}
	if opt.Generation != 3 {
		t.Fatalf("re-solved against generation %d, want 3", opt.Generation)
	}
	_, fresh2, err := core.OptimizeFromSaved(doc.Graph, doc.Catalog, bytes.NewReader(stream2), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalCost != fresh2.TotalCost {
		t.Fatalf("post-drift cost %v != fresh %v", opt.TotalCost, fresh2.TotalCost)
	}

	// Health, metrics and the workflow listing.
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	_, body = get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"etlopt_serve_solves_total",
		"etlopt_serve_cache_hits_total",
		`etlopt_serve_catalog_generation{workflow="tiny"} 3`,
		`etlopt_serve_drift_max_rel{workflow="tiny"}`,
		`etlopt_serve_qerror_max{workflow="tiny"}`,
		"etlopt_serve_invalidations_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
	_, body = get(t, ts.URL+"/v1/workflows")
	var infos []workflowInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Workflow != "tiny" || !infos[0].HasStats || infos[0].Generation != 3 {
		t.Fatalf("workflows listing %+v", infos)
	}
}

// srvBlock fetches a block from the server's built analysis for rendering
// comparisons.
func srvBlock(t *testing.T, srv *Server, bi int) *workflow.Block {
	t.Helper()
	res, err := srv.cssFor("tiny")
	if err != nil {
		t.Fatal(err)
	}
	return res.Analysis.Blocks[bi]
}

func TestServeErrorPaths(t *testing.T) {
	doc, db := tinyWorkflow(t, 11, 600)
	_, ts := newTestServer(t, doc, Options{})

	// Unknown workflow.
	resp, body := post(t, ts.URL+"/v1/optimize", "application/json", []byte(`{"workflow":"nope"}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workflow: %d %s", resp.StatusCode, body)
	}
	resp, _ = post(t, ts.URL+"/v1/observe?workflow=nope", "application/octet-stream", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("observe unknown workflow: %d", resp.StatusCode)
	}

	// Optimize before any statistics exist.
	resp, body = post(t, ts.URL+"/v1/optimize", "application/json", []byte(`{"workflow":"tiny"}`))
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "/v1/observe") {
		t.Fatalf("optimize without statistics: %d %s", resp.StatusCode, body)
	}

	// Corrupt upload: rejected with the byte offset, nothing persisted.
	stream := observedStream(t, doc, db)
	resp, body = post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", stream[:len(stream)-3])
	if resp.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(string(body), "at byte") {
		t.Fatalf("truncated upload: %d %s", resp.StatusCode, body)
	}
	resp, _ = post(t, ts.URL+"/v1/optimize", "application/json", []byte(`{"workflow":"tiny"}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt upload persisted something: optimize returned %d", resp.StatusCode)
	}

	// Bad request bodies.
	resp, _ = post(t, ts.URL+"/v1/optimize", "application/json", []byte(`{"workflow":"tiny","costModel":"quantum"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cost model: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/estimate", "application/json", []byte(`{"workflow":"tiny","method":"oracle"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad method: %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/optimize")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET optimize: %d", resp.StatusCode)
	}
}

func TestServePartialStoreConflict(t *testing.T) {
	doc, db := tinyWorkflow(t, 11, 600)
	_, ts := newTestServer(t, doc, Options{})
	stream := observedStream(t, doc, db)

	// Strip every histogram: join cardinalities lose their derivations.
	full, err := stats.ReadStore(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	partial := stats.NewStore()
	for _, v := range full.Values() {
		if v.Hist != nil {
			continue
		}
		if err := partial.PutScalar(v.Stat, v.Scalar); err != nil {
			t.Fatal(err)
		}
	}
	var pbuf bytes.Buffer
	if _, err := partial.WriteTo(&pbuf); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", pbuf.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial upload: %d %s", resp.StatusCode, body)
	}

	// Default: conflict naming the missing statistics.
	resp, body = post(t, ts.URL+"/v1/optimize", "application/json", []byte(`{"workflow":"tiny"}`))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("partial store optimize: %d %s", resp.StatusCode, body)
	}
	var conflict struct {
		Error   string   `json:"error"`
		Missing []string `json:"missing"`
		Blocks  []int    `json:"blocks"`
	}
	if err := json.Unmarshal(body, &conflict); err != nil {
		t.Fatal(err)
	}
	if len(conflict.Missing) == 0 || len(conflict.Blocks) == 0 || !strings.Contains(conflict.Error, "AllowPartialStats") {
		t.Fatalf("conflict body %s", body)
	}

	// allowPartial: plans come back with the affected blocks on fallback.
	resp, body = post(t, ts.URL+"/v1/optimize", "application/json", []byte(`{"workflow":"tiny","allowPartial":true}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("allowPartial optimize: %d %s", resp.StatusCode, body)
	}
	var opt optimizeResponse
	if err := json.Unmarshal(body, &opt); err != nil {
		t.Fatal(err)
	}
	if len(opt.Fallbacks) == 0 {
		t.Fatalf("allowPartial returned no fallbacks: %s", body)
	}
}

// TestServeObservePayloadMetrics: every upload reports its payload size,
// and /metrics tracks the per-workflow byte gauge plus the shrink ratio
// between consecutive generations — the signal that a producer switched to
// the sketch-backed approximate tier. Sketch-kind (format v2) streams must
// be accepted like any other upload.
func TestServeObservePayloadMetrics(t *testing.T) {
	doc, db := tinyWorkflow(t, 11, 600)
	_, ts := newTestServer(t, doc, Options{})
	exact := observedStream(t, doc, db)

	cfg := core.DefaultConfig()
	cfg.StatsTier = core.TierApprox
	cy, err := core.Run(doc.Graph, doc.Catalog, db, cfg)
	if err != nil {
		t.Fatalf("approx-tier Run: %v", err)
	}
	var abuf bytes.Buffer
	if err := cy.SaveStats(&abuf); err != nil {
		t.Fatalf("SaveStats: %v", err)
	}
	approx := abuf.Bytes()

	var obs observeResponse
	resp, body := post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", exact)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact upload: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &obs); err != nil {
		t.Fatal(err)
	}
	if obs.PayloadBytes != int64(len(exact)) {
		t.Fatalf("exact upload reports %d payload bytes, want %d", obs.PayloadBytes, len(exact))
	}

	resp, body = post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", approx)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sketch-tier upload rejected: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &obs); err != nil {
		t.Fatal(err)
	}
	if obs.PayloadBytes != int64(len(approx)) {
		t.Fatalf("approx upload reports %d payload bytes, want %d", obs.PayloadBytes, len(approx))
	}

	_, mbody := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		fmt.Sprintf(`etlopt_serve_observe_payload_bytes{workflow="tiny"} %d`, len(approx)),
		fmt.Sprintf(`etlopt_serve_observe_payload_shrink{workflow="tiny"} %g`,
			float64(len(exact))/float64(len(approx))),
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("metrics output missing %q:\n%s", want, mbody)
		}
	}
}

func TestServeSuiteCatalogDefault(t *testing.T) {
	// nil workflows serves the built-in suite.
	cat, err := OpenCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cat, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body := get(t, ts.URL+"/v1/workflows")
	var infos []workflowInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 30 || infos[0].Workflow != "wf01" || infos[29].Workflow != "wf30" {
		t.Fatalf("suite listing has %d entries", len(infos))
	}
	for _, info := range infos {
		if info.Blocks == 0 {
			t.Fatalf("workflow %s reports no blocks", info.Workflow)
		}
		if info.HasStats {
			t.Fatalf("empty catalog claims statistics for %s", info.Workflow)
		}
	}
}
