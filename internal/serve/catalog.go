package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"github.com/essential-stats/etlopt/internal/stats"
)

// This file implements the daemon's statistics catalog: the on-disk,
// versioned home of the paper's design-once/execute-repeatedly loop. Each
// workflow owns a directory of immutable generations — every /v1/observe
// upload appends gen-NNNNNN.stats (the canonical ETLSTAT stream) and
// rewrites meta.json to point at it — so the statistics that justified any
// past plan remain inspectable, and drift between consecutive runs is
// measured at upload time, exactly when the loop must decide whether to
// re-optimize.
//
// Layout:
//
//	<dir>/<workflow>/gen-000001.stats   canonical statistics stream
//	<dir>/<workflow>/gen-000002.stats
//	<dir>/<workflow>/meta.json          metadata of the latest generation
//
// Writes are atomic (temp file + rename in the same directory), so a
// crashed upload can never leave a half-written generation as current:
// meta.json only ever names fully written streams.

// Meta describes the latest generation of one workflow's statistics.
type Meta struct {
	Workflow    string `json:"workflow"`
	Generation  int    `json:"generation"`
	Count       int    `json:"count"`
	MemoryUnits int64  `json:"memoryUnits"`
	// DriftMaxRel and DriftMeanRel record the drift of this generation
	// relative to the previous one (zero for the first generation).
	DriftMaxRel  float64 `json:"driftMaxRel"`
	DriftMeanRel float64 `json:"driftMeanRel"`
}

// Entry is a catalog entry held in memory: the latest generation's metadata
// plus its loaded store.
type Entry struct {
	Meta
	Store *stats.Store
}

// Catalog is the daemon's statistics catalog over one directory.
type Catalog struct {
	dir string

	mu      sync.RWMutex
	entries map[string]*Entry
}

// workflowName restricts catalog keys to path-safe names: uploads choose
// the directory a generation lands in, so anything resembling traversal is
// rejected before it touches the filesystem.
var workflowName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// OpenCatalog opens (creating if needed) a statistics catalog directory and
// loads the latest generation of every workflow found in it.
func OpenCatalog(dir string) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: open catalog: %w", err)
	}
	c := &Catalog{dir: dir, entries: make(map[string]*Entry)}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: open catalog: %w", err)
	}
	for _, de := range des {
		if !de.IsDir() || !workflowName.MatchString(de.Name()) {
			continue
		}
		e, err := loadEntry(dir, de.Name())
		if err != nil {
			return nil, fmt.Errorf("serve: catalog entry %s: %w", de.Name(), err)
		}
		if e != nil {
			c.entries[de.Name()] = e
		}
	}
	return c, nil
}

// loadEntry loads one workflow's latest generation; nil when the directory
// holds no meta.json yet (an empty or foreign directory, not an error).
func loadEntry(dir, wf string) (*Entry, error) {
	raw, err := os.ReadFile(filepath.Join(dir, wf, "meta.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("meta.json: %w", err)
	}
	if m.Workflow != wf || m.Generation < 1 {
		return nil, fmt.Errorf("meta.json names %q generation %d", m.Workflow, m.Generation)
	}
	f, err := os.Open(filepath.Join(dir, wf, genFile(m.Generation)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	store, err := stats.ReadStore(f)
	if err != nil {
		return nil, err
	}
	return &Entry{Meta: m, Store: store}, nil
}

func genFile(gen int) string { return fmt.Sprintf("gen-%06d.stats", gen) }

// Get returns the latest entry for a workflow.
func (c *Catalog) Get(workflow string) (*Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[workflow]
	return e, ok
}

// Workflows lists the catalog's workflow names, sorted.
func (c *Catalog) Workflows() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.entries))
	for wf := range c.entries {
		out = append(out, wf)
	}
	sort.Strings(out)
	return out
}

// Put persists a new generation of a workflow's statistics and returns the
// new entry plus the drift relative to the previous generation (zero drift,
// hadPrev false, for a first upload). The store must already be validated —
// the server reads uploads through the hardened stats.ReadStore before they
// reach the catalog.
func (c *Catalog) Put(workflow string, store *stats.Store) (*Entry, stats.Drift, bool, error) {
	if !workflowName.MatchString(workflow) {
		return nil, stats.Drift{}, false, fmt.Errorf("serve: invalid workflow name %q", workflow)
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	var drift stats.Drift
	gen := 1
	prev, hadPrev := c.entries[workflow]
	if hadPrev {
		gen = prev.Generation + 1
		drift = stats.MeasureDrift(prev.Store, store)
	}
	e := &Entry{
		Meta: Meta{
			Workflow:     workflow,
			Generation:   gen,
			Count:        store.Len(),
			MemoryUnits:  store.MemoryUnits(),
			DriftMaxRel:  drift.MaxRel,
			DriftMeanRel: drift.MeanRel,
		},
		Store: store,
	}

	wfDir := filepath.Join(c.dir, workflow)
	if err := os.MkdirAll(wfDir, 0o755); err != nil {
		return nil, stats.Drift{}, false, fmt.Errorf("serve: put %s: %w", workflow, err)
	}
	if err := atomicWrite(wfDir, genFile(gen), func(f *os.File) error {
		_, err := store.WriteTo(f)
		return err
	}); err != nil {
		return nil, stats.Drift{}, false, fmt.Errorf("serve: put %s: %w", workflow, err)
	}
	meta, err := json.MarshalIndent(e.Meta, "", "  ")
	if err != nil {
		return nil, stats.Drift{}, false, err
	}
	meta = append(meta, '\n')
	if err := atomicWrite(wfDir, "meta.json", func(f *os.File) error {
		_, err := f.Write(meta)
		return err
	}); err != nil {
		return nil, stats.Drift{}, false, fmt.Errorf("serve: put %s: %w", workflow, err)
	}

	c.entries[workflow] = e
	return e, drift, hadPrev, nil
}

// atomicWrite writes a file via a temp file in the same directory plus a
// rename, so readers never observe a partial write and a crash never
// corrupts the current generation.
func atomicWrite(dir, name string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(dir, "."+name+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, name))
}
