package serve

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
)

// TestWarmPreloadsCache: after Warm, the first live optimize and estimate
// are cache hits, byte-identical to what a cold daemon would solve — warming
// goes through the same solved() path, so it cannot ship different bytes.
func TestWarmPreloadsCache(t *testing.T) {
	doc, db := tinyWorkflow(t, 11, 600)
	srv, ts := newTestServer(t, doc, Options{})
	stream := observedStream(t, doc, db)
	if resp, body := post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", stream); resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: %d %s", resp.StatusCode, body)
	}

	if warmed := srv.Warm(context.Background(), 4); warmed != 1 {
		t.Fatalf("Warm warmed %d workflows, want 1", warmed)
	}

	req := []byte(`{"workflow":"tiny"}`)
	resp, warmOpt := post(t, ts.URL+"/v1/optimize", "application/json", req)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("first optimize after warm: %d X-Cache=%q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp, warmEst := post(t, ts.URL+"/v1/estimate", "application/json", req)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("first estimate after warm: %d X-Cache=%q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	// A cold daemon over the same statistics produces the same bytes.
	_, tsCold := newTestServer(t, doc, Options{})
	if resp, body := post(t, tsCold.URL+"/v1/observe?workflow=tiny", "application/octet-stream", stream); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold observe: %d %s", resp.StatusCode, body)
	}
	_, coldOpt := post(t, tsCold.URL+"/v1/optimize", "application/json", req)
	_, coldEst := post(t, tsCold.URL+"/v1/estimate", "application/json", req)
	if !bytes.Equal(warmOpt, coldOpt) {
		t.Fatal("warmed optimize bytes differ from a cold solve")
	}
	if !bytes.Equal(warmEst, coldEst) {
		t.Fatal("warmed estimate bytes differ from a cold solve")
	}

	_, mbody := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(mbody), "etlopt_serve_warmed_total 1") {
		t.Fatalf("metrics missing warm count:\n%s", mbody)
	}

	// Warming is a no-op when the cache is off or nothing is cataloged.
	srvOff, _ := newTestServer(t, doc, Options{DisableCache: true})
	if n := srvOff.Warm(context.Background(), 4); n != 0 {
		t.Fatalf("cache-off Warm warmed %d", n)
	}
	srvEmpty, _ := newTestServer(t, doc, Options{})
	if n := srvEmpty.Warm(context.Background(), 4); n != 0 {
		t.Fatalf("empty-catalog Warm warmed %d", n)
	}
}
