package serve

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func scalarStore(t *testing.T, card int64) *stats.Store {
	t.Helper()
	st := stats.NewStore()
	target := stats.BlockSE(0, 1)
	if err := st.PutScalar(stats.NewCard(target), card); err != nil {
		t.Fatal(err)
	}
	h := stats.NewHistogram(workflow.Attr{Rel: "T", Col: "a"})
	for v := int64(1); v <= card/10+1; v++ {
		h.Inc([]int64{v}, 1)
	}
	if err := st.PutHist(stats.Stat{Kind: stats.Hist, Target: target,
		Attrs: []workflow.Attr{{Rel: "T", Col: "a"}}}, h); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCatalogPutGetReload(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	if _, ok := c.Get("wfx"); ok {
		t.Fatal("empty catalog claims an entry")
	}

	e1, drift, hadPrev, err := c.Put("wfx", scalarStore(t, 100))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if hadPrev || drift.MaxRel != 0 || e1.Generation != 1 {
		t.Fatalf("first put: gen=%d hadPrev=%v drift=%+v", e1.Generation, hadPrev, drift)
	}
	e2, drift, hadPrev, err := c.Put("wfx", scalarStore(t, 200))
	if err != nil {
		t.Fatalf("second Put: %v", err)
	}
	if !hadPrev || e2.Generation != 2 || drift.MaxRel <= 0 {
		t.Fatalf("second put: gen=%d hadPrev=%v drift=%+v", e2.Generation, hadPrev, drift)
	}

	// Both generations are on disk; meta.json names the latest.
	for _, f := range []string{"gen-000001.stats", "gen-000002.stats", "meta.json"} {
		if _, err := os.Stat(filepath.Join(dir, "wfx", f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}

	// A fresh open loads the latest generation.
	c2, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, ok := c2.Get("wfx")
	if !ok || got.Generation != 2 || got.Count != e2.Count {
		t.Fatalf("reloaded entry = %+v, want generation 2 count %d", got, e2.Count)
	}
	if v, err := got.Store.Scalar(stats.NewCard(stats.BlockSE(0, 1))); err != nil || v != 200 {
		t.Fatalf("reloaded store scalar = %d, %v", v, err)
	}
	if ws := c2.Workflows(); len(ws) != 1 || ws[0] != "wfx" {
		t.Fatalf("Workflows() = %v", ws)
	}
}

func TestCatalogRejectsUnsafeNames(t *testing.T) {
	c, err := OpenCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "../evil", "a/b", ".hidden", "x y", string(make([]byte, 80))} {
		if _, _, _, err := c.Put(name, scalarStore(t, 1)); err == nil {
			t.Fatalf("Put(%q) accepted an unsafe workflow name", name)
		}
	}
}

func TestCatalogIgnoresForeignDirs(t *testing.T) {
	dir := t.TempDir()
	// A directory without meta.json (crashed before the first successful
	// upload, or unrelated) must not fail the open.
	if err := os.MkdirAll(filepath.Join(dir, "stray"), 0o755); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog with stray dir: %v", err)
	}
	if len(c.Workflows()) != 0 {
		t.Fatalf("stray dir surfaced as entry: %v", c.Workflows())
	}
}
