package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/suite"
)

// TestRingDeterministicAndComplete: every peer computes the same owner for
// every workflow, ownership spreads across peers, and removing a peer only
// moves the workflows that peer owned.
func TestRingDeterministicAndComplete(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	rings := make([]*ring, len(peers))
	for i, self := range peers {
		r, err := newRing(self, peers)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	owned := make(map[string]int)
	var names []string
	for _, w := range suite.All() {
		names = append(names, w.Name)
	}
	for _, wf := range names {
		owner := rings[0].owner(wf)
		for i, r := range rings {
			if got := r.owner(wf); got != owner {
				t.Fatalf("peer %d disagrees on %s: %s vs %s", i, wf, got, owner)
			}
		}
		owned[owner]++
	}
	if len(owned) != len(peers) {
		t.Fatalf("only %d of %d peers own anything: %v", len(owned), len(peers), owned)
	}

	// Consistency: dropping peer c moves only c's workflows.
	smaller, err := newRing(peers[0], peers[:2])
	if err != nil {
		t.Fatal(err)
	}
	for _, wf := range names {
		before, after := rings[0].owner(wf), smaller.owner(wf)
		if before != peers[2] && after != before {
			t.Fatalf("%s moved from %s to %s though its owner did not leave", wf, before, after)
		}
	}
}

// TestRingValidation: misconfigured shard options fail at construction.
func TestRingValidation(t *testing.T) {
	if _, err := newRing("", []string{"http://a:1"}); err == nil {
		t.Fatal("peers without self accepted")
	}
	if _, err := newRing("http://x:1", []string{"http://a:1"}); err == nil {
		t.Fatal("self outside peers accepted")
	}
	if _, err := newRing("http://a:1", []string{"http://a:1", "http://a:1"}); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if r, err := newRing("", nil); r != nil || err != nil {
		t.Fatalf("no peers should mean no ring, got %v, %v", r, err)
	}
}

// shardedPair starts two daemons over one shared statistics catalog
// directory layout (separate catalogs, same workflow set) whose -peers
// lists name each other, and returns them with a workflow owned by each.
func shardedPair(t *testing.T, proxy bool) (tsA, tsB *httptest.Server, wfA, wfB string) {
	t.Helper()
	// Listeners first: the peer URLs must be known before New.
	lA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urlA := "http://" + lA.Addr().String()
	urlB := "http://" + lB.Addr().String()
	peers := []string{urlA, urlB}

	mk := func(self string, l net.Listener) *httptest.Server {
		cat, err := OpenCatalog(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(cat, nil, Options{Self: self, Peers: peers, ShardProxy: proxy})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = l
		ts.Start()
		t.Cleanup(ts.Close)
		return ts
	}
	tsA = mk(urlA, lA)
	tsB = mk(urlB, lB)

	r, err := newRing(urlA, peers)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range suite.All() {
		if wfA == "" && r.owner(w.Name) == urlA {
			wfA = w.Name
		}
		if wfB == "" && r.owner(w.Name) == urlB {
			wfB = w.Name
		}
	}
	if wfA == "" || wfB == "" {
		t.Fatalf("ring did not spread the suite: A=%q B=%q", wfA, wfB)
	}
	return tsA, tsB, wfA, wfB
}

// suiteStream runs one instrumented cycle of a suite workflow at a small
// scale and returns the statistics stream it would upload.
func suiteStream(t *testing.T, name string) []byte {
	t.Helper()
	for _, w := range suite.All() {
		if w.Name != name {
			continue
		}
		cy, err := core.Run(w.Graph, w.Catalog, w.Data(0.002), core.DefaultConfig())
		if err != nil {
			t.Fatalf("core.Run(%s): %v", name, err)
		}
		var buf bytes.Buffer
		if err := cy.SaveStats(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	t.Fatalf("no suite workflow %q", name)
	return nil
}

// TestShardRedirect: a non-owner answers 307 with a Location on the owner,
// preserving path and query, and an owner serves locally.
func TestShardRedirect(t *testing.T) {
	tsA, tsB, wfA, wfB := shardedPair(t, false)

	// A owns wfA: served locally (404: no statistics yet, but no redirect).
	resp, _ := post(t, tsA.URL+"/v1/optimize", "application/json", []byte(fmt.Sprintf(`{"workflow":%q}`, wfA)))
	if resp.StatusCode == http.StatusTemporaryRedirect {
		t.Fatal("owner redirected its own workflow")
	}

	// A does not own wfB: 307 to B, body-preserving method semantics.
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	req := bytes.NewReader([]byte(fmt.Sprintf(`{"workflow":%q}`, wfB)))
	r, err := client.Post(tsA.URL+"/v1/optimize", "application/json", req)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owner returned %d, want 307", r.StatusCode)
	}
	loc := r.Header.Get("Location")
	if !strings.HasPrefix(loc, tsB.URL) || !strings.HasSuffix(loc, "/v1/optimize") {
		t.Fatalf("Location %q does not point at the owner's endpoint", loc)
	}
	if own := r.Header.Get("X-Shard-Owner"); own != tsB.URL {
		t.Fatalf("X-Shard-Owner %q, want %q", own, tsB.URL)
	}

	// Observe redirects too, with the query intact.
	r2, err := client.Post(tsA.URL+"/v1/observe?workflow="+wfB, "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("observe on non-owner returned %d", r2.StatusCode)
	}
	if loc := r2.Header.Get("Location"); !strings.Contains(loc, "workflow="+wfB) {
		t.Fatalf("redirect lost the query: %q", loc)
	}
}

// TestShardProxy: in proxy mode the non-owner forwards to the owner and
// relays the response verbatim — the client sees one hop, tagged
// X-Shard-Proxied, byte-identical to asking the owner directly.
func TestShardProxy(t *testing.T) {
	tsA, tsB, _, wfB := shardedPair(t, true)

	// Feed B (the owner) statistics for wfB through A: the proxy must carry
	// the upload body across.
	stream := suiteStream(t, wfB)
	resp, body := post(t, tsA.URL+"/v1/observe?workflow="+wfB, "application/octet-stream", stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied observe: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Shard-Proxied") != tsB.URL {
		t.Fatalf("X-Shard-Proxied = %q", resp.Header.Get("X-Shard-Proxied"))
	}
	var obs observeResponse
	if err := json.Unmarshal(body, &obs); err != nil {
		t.Fatal(err)
	}
	if obs.Generation != 1 || obs.Workflow != wfB {
		t.Fatalf("proxied observe response %+v", obs)
	}

	// Optimize through the proxy equals optimize at the owner.
	req := []byte(fmt.Sprintf(`{"workflow":%q}`, wfB))
	respA, bodyA := post(t, tsA.URL+"/v1/optimize", "application/json", req)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("proxied optimize: %d %s", respA.StatusCode, bodyA)
	}
	respB, bodyB := post(t, tsB.URL+"/v1/optimize", "application/json", req)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("direct optimize: %d %s", respB.StatusCode, bodyB)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatal("proxied body differs from the owner's")
	}

	// The proxy metric moved on A, not B.
	_, mbody := get(t, tsA.URL+"/metrics")
	if !strings.Contains(string(mbody), "etlopt_serve_shard_proxied_total 2") {
		t.Fatalf("proxy metrics on A:\n%s", mbody)
	}
}
