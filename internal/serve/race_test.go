package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
)

// TestStaleGenerationInsertRejected is the headline bugfix, replayed
// deterministically at the solved() layer. A solve starts against
// generation 1, a drifted upload supersedes it mid-flight, and the solve's
// late cache insert must be rejected — before the fix the insert landed
// after the invalidation and resurrected the superseded solution.
func TestStaleGenerationInsertRejected(t *testing.T) {
	doc, db := tinyWorkflow(t, 11, 600)
	srv, ts := newTestServer(t, doc, Options{})
	stream1 := observedStream(t, doc, db)
	if resp, body := post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", stream1); resp.StatusCode != http.StatusOK {
		t.Fatalf("observe gen 1: %d %s", resp.StatusCode, body)
	}

	// A solve against generation 1, held open at the window where the bug
	// lived: catalog read done, result not yet cached.
	started := make(chan struct{})
	release := make(chan struct{})
	solveDone := make(chan error, 1)
	go func() {
		_, _, err := srv.solved(context.Background(), "tiny", 1, "k", func() ([]byte, error) {
			close(started)
			<-release
			return []byte(`{"from":"generation 1"}`), nil
		})
		solveDone <- err
	}()
	<-started

	// The upload that makes generation 1 stale.
	_, db2 := tinyWorkflow(t, 977, 1800)
	stream2 := observedStream(t, doc, db2)
	resp, body := post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", stream2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe gen 2: %d %s", resp.StatusCode, body)
	}
	var obs observeResponse
	if err := json.Unmarshal(body, &obs); err != nil {
		t.Fatal(err)
	}
	if obs.Generation != 2 || !obs.Reoptimize {
		t.Fatalf("second upload did not drift: %+v", obs)
	}

	// Let the stale solve land its insert.
	close(release)
	if err := <-solveDone; err != nil {
		t.Fatalf("stale solve errored: %v", err)
	}

	// The next request for the same key must NOT see the stale body: it
	// executes a fresh solve at generation 2, and THAT result caches.
	executed := false
	got, hit, err := srv.solved(context.Background(), "tiny", 2, "k", func() ([]byte, error) {
		executed = true
		return []byte(`{"from":"generation 2"}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit || !executed {
		t.Fatalf("stale generation-1 body served from cache: hit=%v executed=%v body=%s", hit, executed, got)
	}
	if string(got) != `{"from":"generation 2"}` {
		t.Fatalf("solved returned %s", got)
	}
	_, hit, err = srv.solved(context.Background(), "tiny", 2, "k", func() ([]byte, error) {
		t.Error("current-generation result was not cached")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("repeat at generation 2: hit=%v err=%v", hit, err)
	}
}

// TestObserveOptimizeRaceNoStaleCache interleaves drifted uploads with
// optimize requests over the full HTTP path (run under -race in CI). Every
// upload alternates between two mutually-drifted streams, so each one
// invalidates; once the uploads stop, the cache may not hold anything older
// than the last generation, and the final optimize must answer from it.
func TestObserveOptimizeRaceNoStaleCache(t *testing.T) {
	doc, db := tinyWorkflow(t, 11, 600)
	srv, ts := newTestServer(t, doc, Options{})
	_, db2 := tinyWorkflow(t, 977, 1800)
	streams := [][]byte{observedStream(t, doc, db), observedStream(t, doc, db2)}
	if resp, body := post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", streams[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed observe: %d %s", resp.StatusCode, body)
	}

	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			resp, body := post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", streams[(i+1)%2])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("upload %d: %d %s", i, resp.StatusCode, body)
			}
		}
	}()
	go func() {
		defer wg.Done()
		req := []byte(`{"workflow":"tiny"}`)
		for i := 0; i < rounds; i++ {
			resp, body := post(t, ts.URL+"/v1/optimize", "application/json", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("optimize %d: %d %s", i, resp.StatusCode, body)
			}
		}
	}()
	wg.Wait()

	entry, ok := srv.catalog.Get("tiny")
	if !ok {
		t.Fatal("catalog lost the workflow")
	}
	if entry.Generation != rounds+1 {
		t.Fatalf("catalog at generation %d after %d uploads", entry.Generation, rounds+1)
	}
	if b := srv.cache.Bound("tiny"); b != entry.Generation {
		t.Fatalf("cache bound %d lags the catalog generation %d", b, entry.Generation)
	}

	// Quiesced: the answer must come from the newest statistics.
	req := []byte(`{"workflow":"tiny"}`)
	resp, body := post(t, ts.URL+"/v1/optimize", "application/json", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final optimize: %d %s", resp.StatusCode, body)
	}
	var opt optimizeResponse
	if err := json.Unmarshal(body, &opt); err != nil {
		t.Fatal(err)
	}
	if opt.Generation != entry.Generation {
		t.Fatalf("final optimize served generation %d, catalog is at %d — stale cache entry survived",
			opt.Generation, entry.Generation)
	}

	// And the fresh answer is cached: the repeat is a byte-identical hit.
	resp, body2 := post(t, ts.URL+"/v1/optimize", "application/json", req)
	if h := resp.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("repeat after quiesce X-Cache = %q", h)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cache hit differs from the solved body")
	}
}
