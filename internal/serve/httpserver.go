package serve

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// Timeouts hardens an http.Server against slow or stalled clients. The
// daemon and the worker both face the open network in production ETL
// deployments; a client that dribbles header bytes, never finishes a body,
// or parks an idle keep-alive connection must not hold a connection slot
// forever. Zero-valued fields fall back to the defaults below.
type Timeouts struct {
	// ReadHeader bounds how long a client may take to send the request
	// headers (slowloris guard).
	ReadHeader time.Duration
	// Read bounds the whole request read, body included.
	Read time.Duration
	// Write bounds writing the response, counted from the end of the
	// request headers.
	Write time.Duration
	// Idle bounds how long a keep-alive connection may sit between
	// requests.
	Idle time.Duration
}

// DefaultTimeouts are generous enough for the largest statistics upload
// (maxUploadBytes) on a slow link while still bounding every connection
// state.
func DefaultTimeouts() Timeouts {
	return Timeouts{
		ReadHeader: 10 * time.Second,
		Read:       2 * time.Minute,
		Write:      2 * time.Minute,
		Idle:       2 * time.Minute,
	}
}

// withDefaults fills zero fields from DefaultTimeouts.
func (t Timeouts) withDefaults() Timeouts {
	d := DefaultTimeouts()
	if t.ReadHeader <= 0 {
		t.ReadHeader = d.ReadHeader
	}
	if t.Read <= 0 {
		t.Read = d.Read
	}
	if t.Write <= 0 {
		t.Write = d.Write
	}
	if t.Idle <= 0 {
		t.Idle = d.Idle
	}
	return t
}

// newHTTPServer returns an http.Server with every connection-state timeout
// set — the one constructor both the daemon and the worker use, so neither
// can regress to an unbounded server.
func newHTTPServer(addr string, h http.Handler, t Timeouts) *http.Server {
	t = t.withDefaults()
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}

// serveUntil runs the server until the context is cancelled, then drains
// in-flight requests (bounded) and returns nil on a clean shutdown.
func serveUntil(ctx context.Context, srv *http.Server) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drain, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(drain); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	<-errc // always http.ErrServerClosed after Shutdown
	return nil
}
