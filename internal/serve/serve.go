// Package serve hosts the paper's design-once/execute-repeatedly loop in a
// long-running daemon. ETL runs are scheduled processes: the process that
// observed this run's statistics is gone by the time the next run is
// planned. The daemon is the piece that persists across runs — it keeps a
// workflow catalog (the built-in suite, or any injected set), a versioned
// on-disk statistics catalog fed by POST /v1/observe uploads, and serves
// plan and estimate queries from those statistics without ever executing a
// workflow itself.
//
// The daemon is built to be one instance of a multi-tenant control plane
// (docs/SERVING.md):
//
//   - Solutions are cached in a size-aware LRU whose entries are bound to
//     the statistics generation they were solved from. A drifted upload
//     raises the workflow's generation bound, so a cached plan can never
//     outlive the snapshot that justified it — not even when the solve was
//     in flight while the invalidation ran. Below-threshold uploads keep
//     serving the standing solutions: the paper's "re-optimize at some user
//     defined interval" made data-driven, as a cache invalidation rule.
//   - Concurrent identical requests solve once (singleflight), and a
//     per-daemon solve limit with a bounded wait queue sheds overload as
//     typed 429 responses with Retry-After instead of queueing without
//     bound.
//   - With -peers, workflows are consistent-hash sharded across daemon
//     instances; a non-owner redirects (307) or proxies, so any instance
//     can face the clients.
//
// Responses are byte-identical whether they came from the cache or a fresh
// solve; the X-Cache header is the only difference.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/estimate"
	"github.com/essential-stats/etlopt/internal/optimizer"
	"github.com/essential-stats/etlopt/internal/schedule"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/suite"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// maxUploadBytes bounds /v1/observe request bodies; the hardened
// stats.ReadStore already caps what it will allocate, this caps what the
// daemon will even buffer.
const maxUploadBytes = 64 << 20

// DefaultDriftThreshold invalidates cached solutions when any statistic
// moved more than 25% relative — a plan justified by statistics that far
// off is due for re-selection.
const DefaultDriftThreshold = 0.25

// Options tune the daemon.
type Options struct {
	// DriftThreshold is the max relative drift an upload may carry before
	// the workflow's cached solutions are invalidated (<= 0 selects
	// DefaultDriftThreshold).
	DriftThreshold float64
	// DisableCache turns the solution cache off: every request solves
	// (still singleflighted). Responses stay byte-identical either way.
	DisableCache bool
	// CacheBytes bounds the solution cache (<= 0 selects
	// DefaultCacheBytes). The LRU evicts the least-recently-used solution
	// when the budget is exceeded.
	CacheBytes int64
	// MaxSolves caps concurrent solver executions (0 = unlimited). Cache
	// hits and singleflight sharers do not occupy a slot.
	MaxSolves int
	// SolveQueue bounds how many requests may wait for a solve slot when
	// MaxSolves is set (< 0 selects DefaultSolveQueue; 0 sheds
	// immediately when every slot is busy).
	SolveQueue int
	// Peers shards workflows across daemon instances by consistent
	// hashing of the workflow name over these base URLs. Empty = no
	// sharding. When set, Self must name this instance's own entry.
	Peers []string
	// Self is this daemon's base URL as it appears in Peers.
	Self string
	// ShardProxy makes a non-owner proxy the request to the owner instead
	// of returning a 307 redirect.
	ShardProxy bool
	// Config seeds the optimization configuration used for every request
	// (CSS options, cost model default). The zero value means
	// core.DefaultConfig.
	Config *core.Config
}

// Document is one servable workflow: the graph plus its relation catalog.
type Document struct {
	Graph   *workflow.Graph
	Catalog *workflow.Catalog
}

// UnknownWorkflowError reports a request for a workflow the daemon does
// not serve.
type UnknownWorkflowError struct{ Workflow string }

func (e *UnknownWorkflowError) Error() string {
	return fmt.Sprintf("serve: unknown workflow %q", e.Workflow)
}

// Server hosts the workflow catalog and the statistics catalog behind an
// HTTP API.
type Server struct {
	catalog *Catalog
	opts    Options
	cfg     core.Config

	workflows map[string]*Document

	// flight deduplicates concurrent identical solves; cache holds the
	// solved response bytes, each entry bound to the statistics
	// generation it was solved from; adm is the concurrent-solve limiter;
	// ring is nil unless Peers shards the workflow space.
	flight group
	cache  *solutionCache
	adm    *admission
	ring   *ring
	client *http.Client

	mu    sync.Mutex
	built map[string]*css.Result // workflow → generated CSS result

	metrics *metrics
}

// New builds a server over a statistics catalog and a workflow set; a nil
// workflow map serves the built-in 30-workflow suite. It errors on an
// inconsistent shard configuration (Peers without Self, Self not a peer).
func New(cat *Catalog, workflows map[string]*Document, opts Options) (*Server, error) {
	if workflows == nil {
		workflows = make(map[string]*Document, 30)
		for _, w := range suite.All() {
			workflows[w.Name] = &Document{Graph: w.Graph, Catalog: w.Catalog}
		}
	}
	if opts.DriftThreshold <= 0 {
		opts.DriftThreshold = DefaultDriftThreshold
	}
	cfg := core.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	rg, err := newRing(opts.Self, opts.Peers)
	if err != nil {
		return nil, err
	}
	return &Server{
		catalog:   cat,
		opts:      opts,
		cfg:       cfg,
		workflows: workflows,
		cache:     newSolutionCache(opts.CacheBytes),
		adm:       newAdmission(opts.MaxSolves, opts.SolveQueue),
		ring:      rg,
		client:    &http.Client{},
		built:     make(map[string]*css.Result),
		metrics:   newMetrics(),
	}, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/workflows", s.handleWorkflows)
	mux.HandleFunc("/v1/observe", s.handleObserve)
	mux.HandleFunc("/v1/optimize", s.handleOptimize)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	return mux
}

// ListenAndServe runs the daemon until the context is cancelled, then
// drains in-flight requests and returns nil on a clean shutdown — SIGTERM
// is how the daemon is meant to stop, not an error.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	return serveUntil(ctx, newHTTPServer(addr, s.Handler(), Timeouts{}))
}

// cssFor returns the workflow's generated CSS result, building it once per
// workflow (singleflighted: concurrent first requests generate once). An
// unknown name is a typed error, never a nil dereference inside the
// flight closure.
func (s *Server) cssFor(name string) (*css.Result, error) {
	s.mu.Lock()
	res, ok := s.built[name]
	s.mu.Unlock()
	if ok {
		return res, nil
	}
	doc, ok := s.workflows[name]
	if !ok {
		return nil, &UnknownWorkflowError{Workflow: name}
	}
	v, err, _ := s.flight.Do("css|"+name, func() (any, error) {
		an, err := workflow.Analyze(doc.Graph, doc.Catalog)
		if err != nil {
			return nil, err
		}
		res, err := css.Generate(an, s.cfg.CSS)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.built[name] = res
		s.mu.Unlock()
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*css.Result), nil
}

// solved runs the solver for (workflow, generation, key) at most once
// across concurrent requests and returns the response bytes, consulting
// the cache unless disabled. The bool reports a cache hit.
//
// gen is the statistics generation the caller read from the catalog and
// will solve from. It is folded into the flight key — two requests racing
// across a drift invalidation read different generations and must not
// share a solve — and it binds the cached entry: a Put from a superseded
// generation is rejected by the LRU's bound, so an observe-upload
// invalidation can never be undone by an in-flight solve.
func (s *Server) solved(ctx context.Context, workflow string, gen int, key string, solve func() ([]byte, error)) ([]byte, bool, error) {
	if !s.opts.DisableCache {
		if body, _, ok := s.cache.Get(workflow, key); ok {
			s.metrics.cache(true)
			return body, true, nil
		}
		s.metrics.cache(false)
	}
	fkey := fmt.Sprintf("%s|g%d|%s", workflow, gen, key)
	v, err, shared := s.flight.Do(fkey, func() (any, error) {
		release, err := s.adm.acquire(ctx)
		if err != nil {
			if errors.As(err, new(*BusyError)) {
				s.metrics.shed()
			}
			return nil, err
		}
		defer release()
		body, err := solve()
		if err != nil {
			return nil, err
		}
		if !s.opts.DisableCache {
			if _, evicted := s.cache.Put(workflow, key, gen, body); evicted > 0 {
				s.metrics.evict(evicted)
			}
		}
		return body, nil
	})
	if err != nil {
		return nil, false, err
	}
	s.metrics.solve(shared)
	return v.([]byte), false, nil
}

// invalidate drops a workflow's cached solutions and raises its
// generation bound to newBound, returning how many were dropped.
func (s *Server) invalidate(workflow string, newBound int) int64 {
	n := s.cache.Invalidate(workflow, newBound)
	s.metrics.invalidate(n)
	return n
}

// routeOwned reports whether this daemon answers for the workflow. When a
// peer owns it, the request is redirected (307, preserving method and
// body) or proxied there, depending on Options.ShardProxy. body carries
// the already-consumed request body for proxying; nil streams r.Body.
func (s *Server) routeOwned(w http.ResponseWriter, r *http.Request, workflow string, body []byte) bool {
	if s.ring == nil || s.ring.owns(workflow) {
		return true
	}
	owner := s.ring.owner(workflow)
	if s.opts.ShardProxy {
		s.metrics.shard(true)
		s.proxyTo(w, r, owner, body)
	} else {
		s.metrics.shard(false)
		w.Header().Set("X-Shard-Owner", owner)
		http.Redirect(w, r, owner+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	}
	return false
}

// proxyTo forwards the request to the shard owner and relays its response
// verbatim, tagging it X-Shard-Proxied so clients can see the extra hop.
func (s *Server) proxyTo(w http.ResponseWriter, r *http.Request, owner string, body []byte) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = http.MaxBytesReader(w, r.Body, maxUploadBytes)
	}
	preq, err := http.NewRequestWithContext(r.Context(), r.Method, owner+r.URL.RequestURI(), rd)
	if err != nil {
		httpError(w, http.StatusBadGateway, fmt.Sprintf("proxy to shard owner %s: %v", owner, err))
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		preq.Header.Set("Content-Type", ct)
	}
	resp, err := s.client.Do(preq)
	if err != nil {
		httpError(w, http.StatusBadGateway, fmt.Sprintf("proxy to shard owner %s: %v", owner, err))
		return
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "X-Cache", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Shard-Proxied", owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.render(w)
	// Live gauges read straight off the control plane's moving parts.
	entries, cacheBytes := s.cache.Stats()
	waiting, inflight := s.adm.depth()
	fmt.Fprintf(w, "etlopt_serve_cache_entries %d\n", entries)
	fmt.Fprintf(w, "etlopt_serve_cache_bytes %d\n", cacheBytes)
	fmt.Fprintf(w, "etlopt_serve_solve_queue_depth %d\n", waiting)
	fmt.Fprintf(w, "etlopt_serve_solves_inflight %d\n", inflight)
}

// workflowInfo is one row of GET /v1/workflows.
type workflowInfo struct {
	Workflow   string `json:"workflow"`
	Blocks     int    `json:"blocks"`
	HasStats   bool   `json:"hasStats"`
	Generation int    `json:"generation,omitempty"`
	// Owner names the sharding peer that owns the workflow (omitted when
	// the daemon runs unsharded).
	Owner string `json:"owner,omitempty"`
}

func (s *Server) handleWorkflows(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("workflows")
	names := make([]string, 0, len(s.workflows))
	for n := range s.workflows {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]workflowInfo, 0, len(names))
	for _, n := range names {
		info := workflowInfo{Workflow: n}
		if res, err := s.cssFor(n); err == nil {
			info.Blocks = len(res.Analysis.Blocks)
		}
		if e, ok := s.catalog.Get(n); ok {
			info.HasStats = true
			info.Generation = e.Generation
		}
		if s.ring != nil {
			info.Owner = s.ring.owner(n)
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// observeResponse reports a persisted upload.
type observeResponse struct {
	Workflow    string    `json:"workflow"`
	Generation  int       `json:"generation"`
	Count       int       `json:"count"`
	MemoryUnits int64     `json:"memoryUnits"`
	Drift       driftJSON `json:"drift"`
	Reoptimize  bool      `json:"reoptimize"`
	Invalidated int64     `json:"invalidated"`
	QErrorMax   float64   `json:"qErrorMax,omitempty"`
	// PayloadBytes is the size of this upload's binary stream — sketch-tier
	// producers shrink it, and /metrics tracks the per-workflow ratio.
	PayloadBytes int64 `json:"payloadBytes"`
}

type driftJSON struct {
	MaxRel  float64 `json:"maxRel"`
	MeanRel float64 `json:"meanRel"`
	Shared  int     `json:"shared"`
	OnlyOld int     `json:"onlyOld"`
	OnlyNew int     `json:"onlyNew"`
}

// handleObserve ingests a statistics upload: the body is the canonical
// binary stream SaveStats/WriteTo produce (and `etlopt run -save-stats`
// writes). The hardened ReadStore validates it end to end before anything
// touches disk; a valid stream becomes the workflow's next generation, and
// drift past the threshold invalidates the workflow's cached solutions.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("observe")
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	name := r.URL.Query().Get("workflow")
	if _, ok := s.workflows[name]; !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown workflow %q", name))
		return
	}
	if !s.routeOwned(w, r, name, nil) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		// Only an actually oversized body is 413; any other read failure —
		// a client that disconnected mid-upload, a broken transfer — is a
		// plain bad request.
		if errors.As(err, new(*http.MaxBytesError)) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("upload exceeds %d bytes", maxUploadBytes))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading upload: %v", err))
		return
	}
	store, err := stats.ReadStore(bytes.NewReader(body))
	if err != nil {
		// Corrupt uploads are client errors and must name the byte offset
		// (FormatError does), so a broken exporter can be debugged from the
		// response alone.
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}

	var prev *stats.Store
	if e, ok := s.catalog.Get(name); ok {
		prev = e.Store
	}
	entry, drift, hadPrev, err := s.catalog.Put(name, store)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := observeResponse{
		Workflow:     name,
		Generation:   entry.Generation,
		Count:        entry.Count,
		MemoryUnits:  entry.MemoryUnits,
		PayloadBytes: int64(len(body)),
		Drift: driftJSON{
			MaxRel: drift.MaxRel, MeanRel: drift.MeanRel,
			Shared: drift.Shared, OnlyOld: drift.OnlyOld, OnlyNew: drift.OnlyNew,
		},
	}
	// First generation, or drift past threshold: whatever was solved before
	// no longer stands. Raising the cache's generation bound (not just
	// emptying it) is what makes this stick against in-flight solves.
	if !hadPrev || drift.Exceeds(s.opts.DriftThreshold) {
		resp.Reoptimize = true
		resp.Invalidated = s.invalidate(name, entry.Generation)
	}
	s.metrics.observe(name, entry.Generation, drift.MaxRel, int64(len(body)))
	if hadPrev {
		if res, err := s.cssFor(name); err == nil {
			if q, ok := maxQError(res, prev, store); ok {
				resp.QErrorMax = q
				s.metrics.qerror(name, q)
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxQError compares the previous generation's derived required
// cardinalities against the new one's — LEO-style feedback: how wrong were
// the estimates the current plans were built on, taking the fresh
// observations as truth. ok is false when no required statistic was
// derivable from both generations.
func maxQError(res *css.Result, prev, cur *stats.Store) (float64, bool) {
	estPrev := estimate.New(res, prev)
	estCur := estimate.New(res, cur)
	q, ok := 0.0, false
	for _, st := range res.Required {
		pv, err1 := estPrev.Value(st)
		cv, err2 := estCur.Value(st)
		if err1 != nil || err2 != nil || pv.Hist != nil || cv.Hist != nil {
			continue
		}
		e, a := float64(pv.Scalar), float64(cv.Scalar)
		if e <= 0 || a <= 0 {
			continue
		}
		r := e / a
		if r < 1 {
			r = 1 / r
		}
		if r > q {
			q = r
		}
		ok = true
	}
	return q, ok
}

// optimizeRequest asks for cost-based plans from the cataloged statistics.
type optimizeRequest struct {
	Workflow string `json:"workflow"`
	// CostModel is "cout" (default) or "hashjoin".
	CostModel string `json:"costModel,omitempty"`
	// AllowPartial optimizes the derivable subset of a partial store,
	// leaving affected blocks on their initial plans (core.Config.
	// AllowPartialStats).
	AllowPartial bool `json:"allowPartial,omitempty"`
}

// optimizeResponse mirrors what `etlopt run` prints per block, as data.
type optimizeResponse struct {
	Workflow         string     `json:"workflow"`
	Generation       int        `json:"generation"`
	CostModel        string     `json:"costModel"`
	TotalCost        float64    `json:"totalCost"`
	TotalInitialCost float64    `json:"totalInitialCost"`
	Improvement      float64    `json:"improvement"`
	Fallbacks        []int      `json:"fallbacks,omitempty"`
	Blocks           []planJSON `json:"blocks"`
}

type planJSON struct {
	Block       int     `json:"block"`
	Designed    string  `json:"designed,omitempty"`
	Optimized   string  `json:"optimized,omitempty"`
	Cost        float64 `json:"cost"`
	InitialCost float64 `json:"initialCost"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("optimize")
	var req optimizeRequest
	raw, ok := decodeJSON(w, r, &req)
	if !ok {
		return
	}
	if _, ok := s.workflows[req.Workflow]; !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown workflow %q", req.Workflow))
		return
	}
	if !s.routeOwned(w, r, req.Workflow, raw) {
		return
	}
	model := optimizer.Cout
	switch req.CostModel {
	case "", "cout":
		req.CostModel = "cout"
	case "hashjoin":
		model = optimizer.HashJoin
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown cost model %q", req.CostModel))
		return
	}
	entry, ok := s.catalog.Get(req.Workflow)
	s.metrics.catalog(ok)
	if !ok {
		httpError(w, http.StatusNotFound,
			fmt.Sprintf("no statistics for workflow %q: POST a store to /v1/observe first", req.Workflow))
		return
	}

	// The cache key deliberately omits the generation: an upload below the
	// drift threshold keeps serving the solution it did not meaningfully
	// change (the response's generation field names the generation it was
	// solved from); a drifted upload raises the workflow's generation
	// bound instead, which both empties the cache and blocks late inserts
	// from solves still in flight against the superseded store.
	key := fmt.Sprintf("optimize|%s|partial=%v", req.CostModel, req.AllowPartial)
	body, hit, err := s.solved(r.Context(), req.Workflow, entry.Generation, key, func() ([]byte, error) {
		return s.solveOptimize(req, model, entry)
	})
	if err != nil {
		var busy *BusyError
		if errors.As(err, &busy) {
			tooBusy(w, busy)
			return
		}
		var miss *core.MissingStatsError
		if errors.As(err, &miss) {
			// The cataloged store cannot support a full optimization: a
			// conflict between what is stored and what was asked, not a
			// server fault.
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":   miss.Error(),
				"missing": miss.Labels,
				"blocks":  miss.Blocks,
			})
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeCached(w, body, hit)
}

// solveOptimize produces the optimize response body from one catalog
// entry — the one solver path both the HTTP handler and the warm-start
// loop use, so a warmed cache is byte-identical to a served solve.
func (s *Server) solveOptimize(req optimizeRequest, model optimizer.CostModel, entry *Entry) ([]byte, error) {
	res, err := s.cssFor(req.Workflow)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	cfg.CostModel = model
	cfg.AllowPartialStats = req.AllowPartial
	_, plans, err := core.OptimizeFromStore(res, entry.Store, cfg)
	if err != nil {
		return nil, err
	}
	resp := optimizeResponse{
		Workflow:         req.Workflow,
		Generation:       entry.Generation,
		CostModel:        req.CostModel,
		TotalCost:        plans.TotalCost,
		TotalInitialCost: plans.TotalInitialCost,
		Improvement:      improvement(plans),
		Fallbacks:        plans.Fallbacks,
	}
	for bi := range res.Analysis.Blocks {
		blk := res.Analysis.Blocks[bi]
		p, ok := plans.Plans[bi]
		if !ok {
			continue
		}
		pj := planJSON{Block: bi, Cost: p.Cost, InitialCost: p.InitialCost}
		if blk.Initial != nil {
			pj.Designed = blk.Initial.Render(blk)
		}
		if p.Tree != nil {
			pj.Optimized = p.Tree.Render(blk)
		}
		resp.Blocks = append(resp.Blocks, pj)
	}
	sort.Slice(resp.Blocks, func(i, j int) bool { return resp.Blocks[i].Block < resp.Blocks[j].Block })
	return marshalJSON(resp)
}

func improvement(plans *optimizer.Result) float64 {
	if plans.TotalCost == 0 {
		return 1
	}
	return plans.TotalInitialCost / plans.TotalCost
}

// estimateRequest asks for the essential-statistics selection (the design
// step) and, when statistics are cataloged, the derived SE cardinalities.
type estimateRequest struct {
	Workflow string `json:"workflow"`
	// Method is the selection solver: "exact" (default), "greedy" or "lp".
	Method string `json:"method,omitempty"`
	// Budget > 0 additionally plans the Section 6.1 multi-run observation
	// schedule under a per-run memory budget.
	Budget int64 `json:"budget,omitempty"`
}

type estimateResponse struct {
	Workflow  string        `json:"workflow"`
	Method    string        `json:"method"`
	Selection selectionJSON `json:"selection"`
	// ScheduledRuns is the number of budgeted observation runs (0 without a
	// budget).
	ScheduledRuns int `json:"scheduledRuns,omitempty"`
	// Generation is the statistics generation the cardinalities derive from
	// (0 when the catalog has none).
	Generation    int        `json:"generation,omitempty"`
	Coverage      *coverage  `json:"coverage,omitempty"`
	Cardinalities []cardJSON `json:"cardinalities,omitempty"`
}

type selectionJSON struct {
	Cost    float64  `json:"cost"`
	Memory  int64    `json:"memory"`
	Optimal bool     `json:"optimal"`
	Observe []string `json:"observe"`
}

type coverage struct {
	Derivable int `json:"derivable"`
	Total     int `json:"total"`
}

type cardJSON struct {
	Block int    `json:"block"`
	SE    string `json:"se"`
	Card  int64  `json:"card"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("estimate")
	var req estimateRequest
	raw, ok := decodeJSON(w, r, &req)
	if !ok {
		return
	}
	if _, ok := s.workflows[req.Workflow]; !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown workflow %q", req.Workflow))
		return
	}
	if !s.routeOwned(w, r, req.Workflow, raw) {
		return
	}
	var method selector.Method
	switch req.Method {
	case "", "exact":
		req.Method, method = "exact", selector.MethodExact
	case "greedy":
		method = selector.MethodGreedy
	case "lp":
		method = selector.MethodLP
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown method %q", req.Method))
		return
	}
	if req.Budget < 0 {
		httpError(w, http.StatusBadRequest, "budget must be >= 0")
		return
	}

	entry, hasStats := s.catalog.Get(req.Workflow)
	s.metrics.catalog(hasStats)
	gen := 0
	if hasStats {
		gen = entry.Generation
	}
	key := fmt.Sprintf("estimate|%s|b%d", req.Method, req.Budget)
	body, hit, err := s.solved(r.Context(), req.Workflow, gen, key, func() ([]byte, error) {
		return s.solveEstimate(req, method, entry, hasStats)
	})
	if err != nil {
		var busy *BusyError
		if errors.As(err, &busy) {
			tooBusy(w, busy)
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeCached(w, body, hit)
}

// solveEstimate produces the estimate response body — shared by the HTTP
// handler and the warm-start loop.
func (s *Server) solveEstimate(req estimateRequest, method selector.Method, entry *Entry, hasStats bool) ([]byte, error) {
	res, err := s.cssFor(req.Workflow)
	if err != nil {
		return nil, err
	}
	coster := costmodel.NewMemoryCoster(res, res.Analysis.Cat)
	u, err := selector.NewUniverse(res, coster)
	if err != nil {
		return nil, err
	}
	sel, err := selector.SelectUniverse(u, selector.Options{Method: method})
	if err != nil {
		return nil, err
	}
	resp := estimateResponse{
		Workflow: req.Workflow,
		Method:   req.Method,
		Selection: selectionJSON{
			Cost:    sel.Cost,
			Memory:  sel.Memory,
			Optimal: sel.Optimal,
			Observe: make([]string, 0, len(sel.Observe)),
		},
	}
	if hasStats {
		resp.Generation = entry.Generation
	}
	for _, st := range sel.Observe {
		blk := res.Analysis.Blocks[st.Target.Block]
		resp.Selection.Observe = append(resp.Selection.Observe,
			fmt.Sprintf("block %d: %s", st.Target.Block, st.Label(blk)))
	}
	if req.Budget > 0 {
		plan, err := schedule.Build(u, req.Budget)
		if err != nil {
			return nil, err
		}
		resp.ScheduledRuns = len(plan.Runs)
	}
	if hasStats {
		derivable, total := estimate.Coverage(res, entry.Store)
		resp.Coverage = &coverage{Derivable: derivable, Total: total}
		est := estimate.New(res, entry.Store)
		for bi, sp := range res.Spaces {
			blk := res.Analysis.Blocks[bi]
			for _, se := range sp.SEs {
				card, err := est.CardOf(bi, se)
				if err != nil {
					continue // underivable: counted by Coverage
				}
				resp.Cardinalities = append(resp.Cardinalities,
					cardJSON{Block: bi, SE: se.Label(blk), Card: card})
			}
		}
	}
	return marshalJSON(resp)
}

// --- plumbing ---

// decodeJSON reads and strictly decodes a bounded JSON request body,
// returning the raw bytes so sharding can proxy the request onward
// without re-serializing.
func decodeJSON(w http.ResponseWriter, r *http.Request, into any) ([]byte, bool) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return nil, false
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		if errors.As(err, new(*http.MaxBytesError)) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return nil, false
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return nil, false
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return nil, false
	}
	return raw, true
}

// tooBusy writes the typed 429: a Retry-After header plus a JSON body
// naming the backoff, so shed clients know this is load, not failure.
func tooBusy(w http.ResponseWriter, busy *BusyError) {
	secs := int(math.Ceil(busy.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":      busy.Error(),
		"retryAfter": secs,
	})
}

// marshalJSON renders a response deterministically (struct field order plus
// explicitly sorted slices), so cached and freshly solved responses are
// byte-identical.
func marshalJSON(v any) ([]byte, error) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

func writeCached(w http.ResponseWriter, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := marshalJSON(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
