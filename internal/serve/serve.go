// Package serve hosts the paper's design-once/execute-repeatedly loop in a
// long-running daemon. ETL runs are scheduled processes: the process that
// observed this run's statistics is gone by the time the next run is
// planned. The daemon is the piece that persists across runs — it keeps a
// workflow catalog (the built-in suite, or any injected set), a versioned
// on-disk statistics catalog fed by POST /v1/observe uploads, and serves
// plan and estimate queries from those statistics without ever executing a
// workflow itself.
//
// Solutions are cached and duplicate-suppressed: concurrent identical
// requests solve once (singleflight), and a cached solution is served until
// an uploaded store drifts past the configured threshold — the paper's
// "re-optimize at some user defined interval" made data-driven, as a cache
// invalidation rule. Responses are byte-identical whether they came from
// the cache or a fresh solve; the X-Cache header is the only difference.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/estimate"
	"github.com/essential-stats/etlopt/internal/optimizer"
	"github.com/essential-stats/etlopt/internal/schedule"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/suite"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// maxUploadBytes bounds /v1/observe request bodies; the hardened
// stats.ReadStore already caps what it will allocate, this caps what the
// daemon will even buffer.
const maxUploadBytes = 64 << 20

// DefaultDriftThreshold invalidates cached solutions when any statistic
// moved more than 25% relative — a plan justified by statistics that far
// off is due for re-selection.
const DefaultDriftThreshold = 0.25

// Options tune the daemon.
type Options struct {
	// DriftThreshold is the max relative drift an upload may carry before
	// the workflow's cached solutions are invalidated (<= 0 selects
	// DefaultDriftThreshold).
	DriftThreshold float64
	// DisableCache turns the solution cache off: every request solves
	// (still singleflighted). Responses stay byte-identical either way.
	DisableCache bool
	// Config seeds the optimization configuration used for every request
	// (CSS options, cost model default). The zero value means
	// core.DefaultConfig.
	Config *core.Config
}

// Document is one servable workflow: the graph plus its relation catalog.
type Document struct {
	Graph   *workflow.Graph
	Catalog *workflow.Catalog
}

// Server hosts the workflow catalog and the statistics catalog behind an
// HTTP API.
type Server struct {
	catalog *Catalog
	opts    Options
	cfg     core.Config

	workflows map[string]*Document

	// flight deduplicates concurrent identical solves; cache holds the
	// solved response bytes per workflow until drift invalidates them.
	flight group
	mu     sync.Mutex
	cache  map[string]map[string][]byte // workflow → request key → response
	built  map[string]*css.Result       // workflow → generated CSS result

	metrics *metrics
}

// New builds a server over a statistics catalog and a workflow set; a nil
// workflow map serves the built-in 30-workflow suite.
func New(cat *Catalog, workflows map[string]*Document, opts Options) *Server {
	if workflows == nil {
		workflows = make(map[string]*Document, 30)
		for _, w := range suite.All() {
			workflows[w.Name] = &Document{Graph: w.Graph, Catalog: w.Catalog}
		}
	}
	if opts.DriftThreshold <= 0 {
		opts.DriftThreshold = DefaultDriftThreshold
	}
	cfg := core.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	return &Server{
		catalog:   cat,
		opts:      opts,
		cfg:       cfg,
		workflows: workflows,
		cache:     make(map[string]map[string][]byte),
		built:     make(map[string]*css.Result),
		metrics:   newMetrics(),
	}
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/workflows", s.handleWorkflows)
	mux.HandleFunc("/v1/observe", s.handleObserve)
	mux.HandleFunc("/v1/optimize", s.handleOptimize)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	return mux
}

// ListenAndServe runs the daemon until the context is cancelled, then
// drains in-flight requests and returns nil on a clean shutdown — SIGTERM
// is how the daemon is meant to stop, not an error.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	return serveUntil(ctx, newHTTPServer(addr, s.Handler(), Timeouts{}))
}

// cssFor returns the workflow's generated CSS result, building it once per
// workflow (singleflighted: concurrent first requests generate once).
func (s *Server) cssFor(name string) (*css.Result, error) {
	s.mu.Lock()
	res, ok := s.built[name]
	s.mu.Unlock()
	if ok {
		return res, nil
	}
	doc := s.workflows[name]
	v, err, _ := s.flight.Do("css|"+name, func() (any, error) {
		an, err := workflow.Analyze(doc.Graph, doc.Catalog)
		if err != nil {
			return nil, err
		}
		res, err := css.Generate(an, s.cfg.CSS)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.built[name] = res
		s.mu.Unlock()
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*css.Result), nil
}

// solved runs the solver for (workflow, key) at most once across concurrent
// requests and returns the response bytes, consulting the cache unless
// disabled. The bool reports a cache hit.
func (s *Server) solved(workflow, key string, solve func() ([]byte, error)) ([]byte, bool, error) {
	if !s.opts.DisableCache {
		s.mu.Lock()
		body, ok := s.cache[workflow][key]
		s.mu.Unlock()
		if ok {
			s.metrics.cache(true)
			return body, true, nil
		}
		s.metrics.cache(false)
	}
	v, err, shared := s.flight.Do(workflow+"|"+key, func() (any, error) {
		body, err := solve()
		if err != nil {
			return nil, err
		}
		if !s.opts.DisableCache {
			s.mu.Lock()
			if s.cache[workflow] == nil {
				s.cache[workflow] = make(map[string][]byte)
			}
			s.cache[workflow][key] = body
			s.mu.Unlock()
		}
		return body, nil
	})
	s.metrics.solve(shared)
	if err != nil {
		return nil, false, err
	}
	return v.([]byte), false, nil
}

// invalidate drops a workflow's cached solutions, returning how many were
// dropped.
func (s *Server) invalidate(workflow string) int64 {
	s.mu.Lock()
	n := int64(len(s.cache[workflow]))
	delete(s.cache, workflow)
	s.mu.Unlock()
	s.metrics.invalidate(n)
	return n
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.render(w)
}

// workflowInfo is one row of GET /v1/workflows.
type workflowInfo struct {
	Workflow   string `json:"workflow"`
	Blocks     int    `json:"blocks"`
	HasStats   bool   `json:"hasStats"`
	Generation int    `json:"generation,omitempty"`
}

func (s *Server) handleWorkflows(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("workflows")
	names := make([]string, 0, len(s.workflows))
	for n := range s.workflows {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]workflowInfo, 0, len(names))
	for _, n := range names {
		info := workflowInfo{Workflow: n}
		if res, err := s.cssFor(n); err == nil {
			info.Blocks = len(res.Analysis.Blocks)
		}
		if e, ok := s.catalog.Get(n); ok {
			info.HasStats = true
			info.Generation = e.Generation
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// observeResponse reports a persisted upload.
type observeResponse struct {
	Workflow    string    `json:"workflow"`
	Generation  int       `json:"generation"`
	Count       int       `json:"count"`
	MemoryUnits int64     `json:"memoryUnits"`
	Drift       driftJSON `json:"drift"`
	Reoptimize  bool      `json:"reoptimize"`
	Invalidated int64     `json:"invalidated"`
	QErrorMax   float64   `json:"qErrorMax,omitempty"`
	// PayloadBytes is the size of this upload's binary stream — sketch-tier
	// producers shrink it, and /metrics tracks the per-workflow ratio.
	PayloadBytes int64 `json:"payloadBytes"`
}

type driftJSON struct {
	MaxRel  float64 `json:"maxRel"`
	MeanRel float64 `json:"meanRel"`
	Shared  int     `json:"shared"`
	OnlyOld int     `json:"onlyOld"`
	OnlyNew int     `json:"onlyNew"`
}

// handleObserve ingests a statistics upload: the body is the canonical
// binary stream SaveStats/WriteTo produce (and `etlopt run -save-stats`
// writes). The hardened ReadStore validates it end to end before anything
// touches disk; a valid stream becomes the workflow's next generation, and
// drift past the threshold invalidates the workflow's cached solutions.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("observe")
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	name := r.URL.Query().Get("workflow")
	if _, ok := s.workflows[name]; !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown workflow %q", name))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	store, err := stats.ReadStore(bytes.NewReader(body))
	if err != nil {
		// Corrupt uploads are client errors and must name the byte offset
		// (FormatError does), so a broken exporter can be debugged from the
		// response alone.
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}

	var prev *stats.Store
	if e, ok := s.catalog.Get(name); ok {
		prev = e.Store
	}
	entry, drift, hadPrev, err := s.catalog.Put(name, store)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := observeResponse{
		Workflow:     name,
		Generation:   entry.Generation,
		Count:        entry.Count,
		MemoryUnits:  entry.MemoryUnits,
		PayloadBytes: int64(len(body)),
		Drift: driftJSON{
			MaxRel: drift.MaxRel, MeanRel: drift.MeanRel,
			Shared: drift.Shared, OnlyOld: drift.OnlyOld, OnlyNew: drift.OnlyNew,
		},
	}
	// First generation, or drift past threshold: whatever was solved before
	// no longer stands.
	if !hadPrev || drift.Exceeds(s.opts.DriftThreshold) {
		resp.Reoptimize = true
		resp.Invalidated = s.invalidate(name)
	}
	s.metrics.observe(name, entry.Generation, drift.MaxRel, int64(len(body)))
	if hadPrev {
		if res, err := s.cssFor(name); err == nil {
			if q, ok := maxQError(res, prev, store); ok {
				resp.QErrorMax = q
				s.metrics.qerror(name, q)
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxQError compares the previous generation's derived required
// cardinalities against the new one's — LEO-style feedback: how wrong were
// the estimates the current plans were built on, taking the fresh
// observations as truth. ok is false when no required statistic was
// derivable from both generations.
func maxQError(res *css.Result, prev, cur *stats.Store) (float64, bool) {
	estPrev := estimate.New(res, prev)
	estCur := estimate.New(res, cur)
	q, ok := 0.0, false
	for _, st := range res.Required {
		pv, err1 := estPrev.Value(st)
		cv, err2 := estCur.Value(st)
		if err1 != nil || err2 != nil || pv.Hist != nil || cv.Hist != nil {
			continue
		}
		e, a := float64(pv.Scalar), float64(cv.Scalar)
		if e <= 0 || a <= 0 {
			continue
		}
		r := e / a
		if r < 1 {
			r = 1 / r
		}
		if r > q {
			q = r
		}
		ok = true
	}
	return q, ok
}

// optimizeRequest asks for cost-based plans from the cataloged statistics.
type optimizeRequest struct {
	Workflow string `json:"workflow"`
	// CostModel is "cout" (default) or "hashjoin".
	CostModel string `json:"costModel,omitempty"`
	// AllowPartial optimizes the derivable subset of a partial store,
	// leaving affected blocks on their initial plans (core.Config.
	// AllowPartialStats).
	AllowPartial bool `json:"allowPartial,omitempty"`
}

// optimizeResponse mirrors what `etlopt run` prints per block, as data.
type optimizeResponse struct {
	Workflow         string     `json:"workflow"`
	Generation       int        `json:"generation"`
	CostModel        string     `json:"costModel"`
	TotalCost        float64    `json:"totalCost"`
	TotalInitialCost float64    `json:"totalInitialCost"`
	Improvement      float64    `json:"improvement"`
	Fallbacks        []int      `json:"fallbacks,omitempty"`
	Blocks           []planJSON `json:"blocks"`
}

type planJSON struct {
	Block       int     `json:"block"`
	Designed    string  `json:"designed,omitempty"`
	Optimized   string  `json:"optimized,omitempty"`
	Cost        float64 `json:"cost"`
	InitialCost float64 `json:"initialCost"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("optimize")
	var req optimizeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if _, ok := s.workflows[req.Workflow]; !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown workflow %q", req.Workflow))
		return
	}
	model := optimizer.Cout
	switch req.CostModel {
	case "", "cout":
		req.CostModel = "cout"
	case "hashjoin":
		model = optimizer.HashJoin
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown cost model %q", req.CostModel))
		return
	}
	entry, ok := s.catalog.Get(req.Workflow)
	s.metrics.catalog(ok)
	if !ok {
		httpError(w, http.StatusNotFound,
			fmt.Sprintf("no statistics for workflow %q: POST a store to /v1/observe first", req.Workflow))
		return
	}

	// The key deliberately omits the generation: an upload below the drift
	// threshold keeps serving the solution it did not meaningfully change
	// (the response's generation field names the generation it was solved
	// from); a drifted upload empties the workflow's cache instead.
	key := fmt.Sprintf("optimize|%s|partial=%v", req.CostModel, req.AllowPartial)
	body, hit, err := s.solved(req.Workflow, key, func() ([]byte, error) {
		res, err := s.cssFor(req.Workflow)
		if err != nil {
			return nil, err
		}
		cfg := s.cfg
		cfg.CostModel = model
		cfg.AllowPartialStats = req.AllowPartial
		_, plans, err := core.OptimizeFromStore(res, entry.Store, cfg)
		if err != nil {
			return nil, err
		}
		resp := optimizeResponse{
			Workflow:         req.Workflow,
			Generation:       entry.Generation,
			CostModel:        req.CostModel,
			TotalCost:        plans.TotalCost,
			TotalInitialCost: plans.TotalInitialCost,
			Improvement:      improvement(plans),
			Fallbacks:        plans.Fallbacks,
		}
		for bi := range res.Analysis.Blocks {
			blk := res.Analysis.Blocks[bi]
			p, ok := plans.Plans[bi]
			if !ok {
				continue
			}
			pj := planJSON{Block: bi, Cost: p.Cost, InitialCost: p.InitialCost}
			if blk.Initial != nil {
				pj.Designed = blk.Initial.Render(blk)
			}
			if p.Tree != nil {
				pj.Optimized = p.Tree.Render(blk)
			}
			resp.Blocks = append(resp.Blocks, pj)
		}
		sort.Slice(resp.Blocks, func(i, j int) bool { return resp.Blocks[i].Block < resp.Blocks[j].Block })
		return marshalJSON(resp)
	})
	if err != nil {
		var miss *core.MissingStatsError
		if errors.As(err, &miss) {
			// The cataloged store cannot support a full optimization: a
			// conflict between what is stored and what was asked, not a
			// server fault.
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":   miss.Error(),
				"missing": miss.Labels,
				"blocks":  miss.Blocks,
			})
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeCached(w, body, hit)
}

func improvement(plans *optimizer.Result) float64 {
	if plans.TotalCost == 0 {
		return 1
	}
	return plans.TotalInitialCost / plans.TotalCost
}

// estimateRequest asks for the essential-statistics selection (the design
// step) and, when statistics are cataloged, the derived SE cardinalities.
type estimateRequest struct {
	Workflow string `json:"workflow"`
	// Method is the selection solver: "exact" (default), "greedy" or "lp".
	Method string `json:"method,omitempty"`
	// Budget > 0 additionally plans the Section 6.1 multi-run observation
	// schedule under a per-run memory budget.
	Budget int64 `json:"budget,omitempty"`
}

type estimateResponse struct {
	Workflow  string        `json:"workflow"`
	Method    string        `json:"method"`
	Selection selectionJSON `json:"selection"`
	// ScheduledRuns is the number of budgeted observation runs (0 without a
	// budget).
	ScheduledRuns int `json:"scheduledRuns,omitempty"`
	// Generation is the statistics generation the cardinalities derive from
	// (0 when the catalog has none).
	Generation    int        `json:"generation,omitempty"`
	Coverage      *coverage  `json:"coverage,omitempty"`
	Cardinalities []cardJSON `json:"cardinalities,omitempty"`
}

type selectionJSON struct {
	Cost    float64  `json:"cost"`
	Memory  int64    `json:"memory"`
	Optimal bool     `json:"optimal"`
	Observe []string `json:"observe"`
}

type coverage struct {
	Derivable int `json:"derivable"`
	Total     int `json:"total"`
}

type cardJSON struct {
	Block int    `json:"block"`
	SE    string `json:"se"`
	Card  int64  `json:"card"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("estimate")
	var req estimateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if _, ok := s.workflows[req.Workflow]; !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown workflow %q", req.Workflow))
		return
	}
	var method selector.Method
	switch req.Method {
	case "", "exact":
		req.Method, method = "exact", selector.MethodExact
	case "greedy":
		method = selector.MethodGreedy
	case "lp":
		method = selector.MethodLP
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown method %q", req.Method))
		return
	}
	if req.Budget < 0 {
		httpError(w, http.StatusBadRequest, "budget must be >= 0")
		return
	}

	gen := 0
	entry, hasStats := s.catalog.Get(req.Workflow)
	s.metrics.catalog(hasStats)
	if hasStats {
		gen = entry.Generation
	}
	key := fmt.Sprintf("estimate|%s|b%d", req.Method, req.Budget)
	body, hit, err := s.solved(req.Workflow, key, func() ([]byte, error) {
		res, err := s.cssFor(req.Workflow)
		if err != nil {
			return nil, err
		}
		coster := costmodel.NewMemoryCoster(res, res.Analysis.Cat)
		u, err := selector.NewUniverse(res, coster)
		if err != nil {
			return nil, err
		}
		sel, err := selector.SelectUniverse(u, selector.Options{Method: method})
		if err != nil {
			return nil, err
		}
		resp := estimateResponse{
			Workflow: req.Workflow,
			Method:   req.Method,
			Selection: selectionJSON{
				Cost:    sel.Cost,
				Memory:  sel.Memory,
				Optimal: sel.Optimal,
				Observe: make([]string, 0, len(sel.Observe)),
			},
			Generation: gen,
		}
		for _, st := range sel.Observe {
			blk := res.Analysis.Blocks[st.Target.Block]
			resp.Selection.Observe = append(resp.Selection.Observe,
				fmt.Sprintf("block %d: %s", st.Target.Block, st.Label(blk)))
		}
		if req.Budget > 0 {
			plan, err := schedule.Build(u, req.Budget)
			if err != nil {
				return nil, err
			}
			resp.ScheduledRuns = len(plan.Runs)
		}
		if hasStats {
			derivable, total := estimate.Coverage(res, entry.Store)
			resp.Coverage = &coverage{Derivable: derivable, Total: total}
			est := estimate.New(res, entry.Store)
			for bi, sp := range res.Spaces {
				blk := res.Analysis.Blocks[bi]
				for _, se := range sp.SEs {
					card, err := est.CardOf(bi, se)
					if err != nil {
						continue // underivable: counted by Coverage
					}
					resp.Cardinalities = append(resp.Cardinalities,
						cardJSON{Block: bi, SE: se.Label(blk), Card: card})
				}
			}
		}
		return marshalJSON(resp)
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeCached(w, body, hit)
}

// --- plumbing ---

func decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// marshalJSON renders a response deterministically (struct field order plus
// explicitly sorted slices), so cached and freshly solved responses are
// byte-identical.
func marshalJSON(v any) ([]byte, error) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

func writeCached(w http.ResponseWriter, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := marshalJSON(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
