package serve

import (
	"fmt"
	"testing"
)

// TestLRUEviction: inserting past the byte budget evicts the
// least-recently-used entries, the byte account tracks exactly, and a Get
// refreshes recency so hot entries survive.
func TestLRUEviction(t *testing.T) {
	body := make([]byte, 100)
	size := entrySize(&cacheEntry{wf: "wf", key: "k0", gen: 1, body: body})
	c := newSolutionCache(3 * size) // room for exactly three entries

	for i := 0; i < 3; i++ {
		ins, ev := c.Put("wf", fmt.Sprintf("k%d", i), 1, body)
		if !ins || ev != 0 {
			t.Fatalf("insert %d: inserted=%v evicted=%d", i, ins, ev)
		}
	}
	if n, b := c.Stats(); n != 3 || b != 3*size {
		t.Fatalf("after 3 inserts: %d entries, %d bytes (want 3, %d)", n, b, 3*size)
	}

	// Touch k0 so k1 becomes the LRU victim.
	if _, _, ok := c.Get("wf", "k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	ins, ev := c.Put("wf", "k3", 1, body)
	if !ins || ev != 1 {
		t.Fatalf("overflow insert: inserted=%v evicted=%d, want 1 eviction", ins, ev)
	}
	if _, _, ok := c.Get("wf", "k1"); ok {
		t.Fatal("k1 survived eviction despite being LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, _, ok := c.Get("wf", k); !ok {
			t.Fatalf("%s evicted, want k1 only", k)
		}
	}
	if n, b := c.Stats(); n != 3 || b != 3*size {
		t.Fatalf("after eviction: %d entries, %d bytes", n, b)
	}

	// A body bigger than the whole budget is never cached.
	if ins, _ := c.Put("wf", "huge", 1, make([]byte, 4*int(size))); ins {
		t.Fatal("oversized body was cached")
	}
}

// TestLRUGenerationBound: invalidation raises the workflow's generation
// bound; a Put from a superseded generation is rejected, a Get of a
// superseded entry misses, and the bound never moves backward.
func TestLRUGenerationBound(t *testing.T) {
	c := newSolutionCache(1 << 20)

	if ins, _ := c.Put("wf", "k", 1, []byte("gen1")); !ins {
		t.Fatal("gen-1 insert rejected with no bound set")
	}
	if dropped := c.Invalidate("wf", 2); dropped != 1 {
		t.Fatalf("invalidate dropped %d, want 1", dropped)
	}
	if _, _, ok := c.Get("wf", "k"); ok {
		t.Fatal("entry survived invalidation")
	}

	// The stale-generation race, distilled: a solve that started from the
	// superseded generation completes after the invalidation ran. Its
	// insert must be rejected.
	if ins, _ := c.Put("wf", "k", 1, []byte("stale")); ins {
		t.Fatal("superseded-generation insert was accepted")
	}
	if _, _, ok := c.Get("wf", "k"); ok {
		t.Fatal("stale body is being served")
	}

	// A solve from the new generation caches fine.
	if ins, _ := c.Put("wf", "k", 2, []byte("gen2")); !ins {
		t.Fatal("current-generation insert rejected")
	}
	body, gen, ok := c.Get("wf", "k")
	if !ok || gen != 2 || string(body) != "gen2" {
		t.Fatalf("Get = %q gen %d ok %v", body, gen, ok)
	}

	// Out-of-order invalidations (two racing uploads acknowledged out of
	// order) must not lower the bound.
	c.Invalidate("wf", 5)
	c.Invalidate("wf", 3)
	if b := c.Bound("wf"); b != 5 {
		t.Fatalf("bound moved backward: %d", b)
	}
	if ins, _ := c.Put("wf", "k", 4, []byte("gen4")); ins {
		t.Fatal("gen-4 insert accepted under bound 5")
	}

	// A newer-generation entry is not replaced by an older valid one.
	c2 := newSolutionCache(1 << 20)
	c2.Put("wf", "k", 3, []byte("gen3"))
	if ins, _ := c2.Put("wf", "k", 2, []byte("gen2")); ins {
		t.Fatal("older generation replaced a newer cached body")
	}
}

// TestLRUWorkflowIsolation: invalidating one workflow leaves the others'
// entries and bounds alone.
func TestLRUWorkflowIsolation(t *testing.T) {
	c := newSolutionCache(1 << 20)
	c.Put("a", "k", 1, []byte("a1"))
	c.Put("b", "k", 1, []byte("b1"))
	c.Invalidate("a", 2)
	if _, _, ok := c.Get("a", "k"); ok {
		t.Fatal("a survived its invalidation")
	}
	if _, _, ok := c.Get("b", "k"); !ok {
		t.Fatal("b was dropped by a's invalidation")
	}
	if c.Bound("b") != 0 {
		t.Fatal("b's bound moved")
	}
}
