package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is how many points each peer contributes to the hash ring.
// 64 virtual nodes keep the ownership spread within a few percent of even
// for small fleets without making ring construction or lookup noticeable.
const ringVnodes = 64

// ring is a consistent-hash ring over daemon peers: every workflow name
// hashes to a point, and the first peer point at or after it owns the
// workflow. Adding or removing one peer moves only the workflows in the
// arcs that peer owned — the property that lets a fleet scale without a
// coordinated cache flush.
//
// Every peer builds the ring from the same -peers list, so ownership is
// agreed upon without any coordination traffic: a daemon either owns a
// workflow or knows exactly who does.
type ring struct {
	self   string
	points []ringPoint
}

type ringPoint struct {
	h    uint64
	peer string
}

// newRing validates the peer list (which must include self) and builds
// the ring. A nil return with nil error means sharding is off (no peers).
func newRing(self string, peers []string) (*ring, error) {
	if len(peers) == 0 {
		return nil, nil
	}
	if self == "" {
		return nil, fmt.Errorf("serve: -peers needs -self (this daemon's own base URL)")
	}
	seen := make(map[string]bool, len(peers))
	r := &ring{self: self}
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("serve: empty peer URL")
		}
		if seen[p] {
			return nil, fmt.Errorf("serve: duplicate peer %q", p)
		}
		seen[p] = true
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{h: ringHash(fmt.Sprintf("%s|%d", p, i)), peer: p})
		}
	}
	if !seen[self] {
		return nil, fmt.Errorf("serve: -self %q is not in -peers", self)
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// owner returns the peer that owns a workflow.
func (r *ring) owner(workflow string) string {
	h := ringHash(workflow)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].peer
}

// owns reports whether this daemon owns the workflow.
func (r *ring) owns(workflow string) bool { return r.owner(workflow) == r.self }

// ringHash hashes a key onto the ring: FNV-1a with a splitmix64-style
// finalizer, the same recipe the deterministic fault injector uses —
// FNV-1a alone clusters short keys, the finalizer spreads them.
func ringHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
