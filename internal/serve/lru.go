package serve

import (
	"container/list"
	"sync"
)

// DefaultCacheBytes bounds the solution cache when Options.CacheBytes is
// unset: 64 MiB of response bodies, plenty for thousands of workflows'
// optimize/estimate solutions while keeping a hard ceiling on daemon
// memory.
const DefaultCacheBytes = 64 << 20

// entryOverhead is charged per cache entry on top of the payload bytes:
// map slots, list element, string headers. The exact figure matters less
// than charging something, so a flood of tiny entries cannot grow the
// index without bound while the byte account reads near zero.
const entryOverhead = 128

// solutionCache is the daemon's solved-response cache: a size-aware LRU
// in which every entry is bound to the statistics generation it was
// solved from.
//
// The generation bound is the stale-generation race fix. The serving path
// is check-then-act: a handler reads the workflow's catalog entry (say
// generation G), solves — possibly for a long time — and only then
// inserts the response. If a drifted /v1/observe upload lands in that
// window, it bumps the generation to G+1 and invalidates the workflow's
// cache; without the bound, the late insert would re-populate the cache
// with a body derived from the superseded store and serve it forever.
// Invalidate raises the workflow's minimum admissible generation, so the
// late Put (gen G < bound G+1) is rejected, and Get double-checks the
// bound so an entry can never outlive the snapshot that justified it.
//
// Below-threshold uploads keep the documented reuse behavior: they
// advance the catalog generation without touching the bound, so solutions
// from the still-standing snapshot keep serving.
type solutionCache struct {
	maxBytes int64

	mu    sync.Mutex
	bytes int64
	order *list.List                          // front = most recently used
	byWF  map[string]map[string]*list.Element // workflow → request key → element
	bound map[string]int                      // min admissible generation per workflow
}

// cacheEntry is the list payload.
type cacheEntry struct {
	wf, key string
	gen     int
	body    []byte
}

func newSolutionCache(maxBytes int64) *solutionCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &solutionCache{
		maxBytes: maxBytes,
		order:    list.New(),
		byWF:     make(map[string]map[string]*list.Element),
		bound:    make(map[string]int),
	}
}

func entrySize(e *cacheEntry) int64 {
	return int64(len(e.body)+len(e.wf)+len(e.key)) + entryOverhead
}

// Get returns the cached body and the generation it was solved from,
// refreshing recency. An entry solved from a generation below the
// workflow's bound is dead: it is dropped and reported as a miss.
func (c *solutionCache) Get(wf, key string) ([]byte, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byWF[wf][key]
	if !ok {
		return nil, 0, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen < c.bound[wf] {
		c.removeLocked(el)
		return nil, 0, false
	}
	c.order.MoveToFront(el)
	return e.body, e.gen, true
}

// Put inserts a solved body bound to the generation it was solved from.
// The insert is rejected when the generation is below the workflow's
// bound (a solve from a superseded snapshot), when a newer-generation
// body is already cached under the key, or when the body alone exceeds
// the byte budget. evicted reports how many LRU entries were dropped to
// fit the new one.
func (c *solutionCache) Put(wf, key string, gen int, body []byte) (inserted bool, evicted int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen < c.bound[wf] {
		return false, 0
	}
	if el, ok := c.byWF[wf][key]; ok {
		if el.Value.(*cacheEntry).gen > gen {
			return false, 0
		}
		c.removeLocked(el)
	}
	e := &cacheEntry{wf: wf, key: key, gen: gen, body: body}
	size := entrySize(e)
	if size > c.maxBytes {
		return false, 0
	}
	el := c.order.PushFront(e)
	if c.byWF[wf] == nil {
		c.byWF[wf] = make(map[string]*list.Element)
	}
	c.byWF[wf][key] = el
	c.bytes += size
	for c.bytes > c.maxBytes {
		back := c.order.Back()
		if back == nil || back == el {
			break
		}
		c.removeLocked(back)
		evicted++
	}
	return true, evicted
}

// Invalidate drops every cached solution of a workflow and raises its
// generation bound to newBound. The bound only ever moves forward, so two
// racing invalidations cannot re-admit a superseded generation.
func (c *solutionCache) Invalidate(wf string, newBound int) (dropped int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if newBound > c.bound[wf] {
		c.bound[wf] = newBound
	}
	for _, el := range c.byWF[wf] {
		c.removeLocked(el)
		dropped++
	}
	return dropped
}

// Bound returns the workflow's minimum admissible generation.
func (c *solutionCache) Bound(wf string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bound[wf]
}

// Stats reports the cache's current entry count and byte account.
func (c *solutionCache) Stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.bytes
}

func (c *solutionCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.order.Remove(el)
	c.bytes -= entrySize(e)
	if m := c.byWF[e.wf]; m != nil {
		delete(m, e.key)
		if len(m) == 0 {
			delete(c.byWF, e.wf)
		}
	}
}
