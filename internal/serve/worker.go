package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/suite"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Worker is the executor side of distributed block dispatch: a stateless
// HTTP server that runs exactly one physical-plan block per request and
// returns the block's boundary output, side effects and statistics shard.
//
// Statelessness is what makes the coordinator's fault tolerance simple: a
// block request carries (or deterministically implies) everything its
// execution needs — the suite workflow id and scale pin the generated
// data, the shipped join trees and observe list pin the compiled plan, the
// upstream tables arrive in the request body — so any worker can run any
// block, a reassigned block produces byte-identical results on a different
// worker, and a worker that dies loses nothing but in-flight work.
type Worker struct {
	// HTTPTimeouts harden the worker's server (zero = DefaultTimeouts).
	HTTPTimeouts Timeouts

	mu     sync.Mutex
	states map[workerKey]*workerState
}

// NewWorker returns a worker with an empty workflow cache.
func NewWorker() *Worker {
	return &Worker{states: make(map[workerKey]*workerState)}
}

// workerKey identifies one deterministic dataset: the suite workflow and
// its data scale.
type workerKey struct {
	wf    int
	scale float64
}

// workerState caches what every block of one workflow shares: the analyzed
// graph, the generated data, and CSS results per option set.
type workerState struct {
	an  *workflow.Analysis
	db  engine.DB
	css map[css.Options]*css.Result
}

// WorkerRunRequest is the wire form of one block execution. Table blobs
// use the data package's canonical binary codec (base64 inside JSON);
// everything else is plain JSON — stats.Stat, workflow.JoinTree and
// css.Options are flat exported structs that round-trip exactly.
type WorkerRunRequest struct {
	// WF and Scale pin the suite workflow and its deterministic dataset.
	WF    int     `json:"wf"`
	Scale float64 `json:"scale"`
	// Streaming selects the pipelined engine; RowMode the row-at-a-time
	// interpreter; Workers the block-internal parallelism.
	Streaming bool `json:"streaming,omitempty"`
	RowMode   bool `json:"row_mode,omitempty"`
	Workers   int  `json:"workers,omitempty"`
	// MaxRows caps this block's intermediate rows (the coordinator ships
	// its per-run budget; in distributed mode the cap applies per
	// worker-block).
	MaxRows int64 `json:"max_rows,omitempty"`
	// Faults is the injector spec (faults.Parse form) so worker-side
	// operator/source/tap/budget faults reproduce the in-process pattern.
	Faults string `json:"faults,omitempty"`
	// RetryMax / RetryBackoffNs carry the engine retry knobs.
	RetryMax       int   `json:"retry_max,omitempty"`
	RetryBackoffNs int64 `json:"retry_backoff_ns,omitempty"`
	// CSS rebuilds the statistic universe when the run is instrumented.
	CSS css.Options `json:"css"`
	// Instrument, AnyPoint and Observe mirror engine.DispatchSpec.
	Instrument bool         `json:"instrument,omitempty"`
	AnyPoint   bool         `json:"any_point,omitempty"`
	Observe    []stats.Stat `json:"observe,omitempty"`
	// Plans maps block index to join tree (nil = initial trees).
	Plans map[int]*workflow.JoinTree `json:"plans,omitempty"`
	// Block is the block to execute; Upstream carries the boundary outputs
	// of its dependencies as canonical table blobs.
	Block    int            `json:"block"`
	Upstream map[int][]byte `json:"upstream,omitempty"`
	// Lease identifies the coordinator's lease on this dispatch (echoed in
	// logs/diagnostics; the worker itself is stateless).
	Lease string `json:"lease,omitempty"`
}

// WireFailedStat is a degraded statistic on the wire: the statistic plus
// its error rendered as text (errors do not round-trip as values).
type WireFailedStat struct {
	Stat stats.Stat `json:"stat"`
	Err  string     `json:"err"`
}

// WorkerRunResponse is one block's outcome on the wire.
type WorkerRunResponse struct {
	// Out is the block's boundary output (canonical table blob).
	Out []byte `json:"out"`
	// Materialized holds the block's materialized targets.
	Materialized map[string][]byte `json:"materialized,omitempty"`
	// Rows is the block's work-metric contribution.
	Rows int64 `json:"rows"`
	// Shard is the block's statistics shard in the stats v2 store format
	// (empty when uninstrumented).
	Shard []byte `json:"shard,omitempty"`
	// Degraded lists statistics whose observation failed permanently.
	Degraded []WireFailedStat `json:"degraded,omitempty"`
	// Retries counts worker-side attempts repeated after transient faults.
	Retries int64 `json:"retries,omitempty"`
}

// Handler returns the worker's endpoints.
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/worker/health", wk.handleHealth)
	mux.HandleFunc("/v1/worker/run", wk.handleRun)
	return mux
}

// ListenAndServe runs the worker until the context is cancelled (SIGTERM
// is the intended stop), then drains and returns nil.
func (wk *Worker) ListenAndServe(ctx context.Context, addr string) error {
	return serveUntil(ctx, newHTTPServer(addr, wk.Handler(), wk.HTTPTimeouts))
}

func (wk *Worker) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (wk *Worker) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req WorkerRunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	resp, status, err := wk.runBlock(r.Context(), &req)
	if err != nil {
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// runBlock executes one block per the request. The status return
// classifies failures for the coordinator: 4xx are deterministic (bad
// request or the block's own execution error — retrying elsewhere cannot
// help), 5xx would be worker-local trouble.
func (wk *Worker) runBlock(ctx context.Context, req *WorkerRunRequest) (*WorkerRunResponse, int, error) {
	st, err := wk.state(req.WF, req.Scale)
	if err != nil {
		return nil, http.StatusNotFound, err
	}
	flt, err := faults.Parse(req.Faults)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	var res *css.Result
	var observe []stats.Stat
	if req.Instrument {
		res, err = wk.cssResult(st, req.CSS)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		observe = req.Observe
	}
	upstream := make(map[int]*data.Table, len(req.Upstream))
	for idx, blob := range req.Upstream {
		tbl, err := data.ReadTable(bytes.NewReader(blob))
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("upstream block %d: %w", idx, err)
		}
		upstream[idx] = tbl
	}
	var rb *engine.RemoteBlock
	if req.Streaming {
		eng := engine.NewStream(st.an, st.db, nil)
		eng.Workers = req.Workers
		eng.MaxRows = req.MaxRows
		eng.Faults = flt
		eng.RetryMax = req.RetryMax
		eng.RetryBackoff = durationNs(req.RetryBackoffNs)
		eng.RowMode = req.RowMode
		rb, err = eng.RunBlockCtx(ctx, req.Block, req.Plans, res, observe, req.AnyPoint, upstream)
	} else {
		eng := engine.New(st.an, st.db, nil)
		eng.Workers = req.Workers
		eng.MaxRows = req.MaxRows
		eng.Faults = flt
		eng.RetryMax = req.RetryMax
		eng.RetryBackoff = durationNs(req.RetryBackoffNs)
		eng.RowMode = req.RowMode
		rb, err = eng.RunBlockCtx(ctx, req.Block, req.Plans, res, observe, req.AnyPoint, upstream)
	}
	if err != nil {
		if ctx.Err() != nil {
			// The coordinator hung up (lease expiry or run cancellation);
			// the status is moot, the response will not be read.
			return nil, http.StatusServiceUnavailable, ctx.Err()
		}
		return nil, http.StatusUnprocessableEntity, err
	}
	resp := &WorkerRunResponse{Rows: rb.Rows, Retries: rb.Retries}
	if resp.Out, err = encodeTable(rb.Out); err != nil {
		return nil, http.StatusInternalServerError, err
	}
	if len(rb.Materialized) > 0 {
		resp.Materialized = make(map[string][]byte, len(rb.Materialized))
		for name, tbl := range rb.Materialized {
			if resp.Materialized[name], err = encodeTable(tbl); err != nil {
				return nil, http.StatusInternalServerError, err
			}
		}
	}
	if rb.Observed != nil {
		var buf bytes.Buffer
		if _, err := rb.Observed.WriteTo(&buf); err != nil {
			return nil, http.StatusInternalServerError, err
		}
		resp.Shard = buf.Bytes()
	}
	for _, fs := range rb.Degraded {
		resp.Degraded = append(resp.Degraded, WireFailedStat{Stat: fs.Stat, Err: fs.Err.Error()})
	}
	return resp, 0, nil
}

// state returns (building once) the workflow's analysis and generated
// data. Both are pure functions of (wf, scale), so every worker — and the
// coordinator's own in-process fallback — sees identical tables.
func (wk *Worker) state(wf int, scale float64) (*workerState, error) {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	key := workerKey{wf: wf, scale: scale}
	if st, ok := wk.states[key]; ok {
		return st, nil
	}
	w, err := suite.Get(wf)
	if err != nil {
		return nil, err
	}
	an, err := workflow.Analyze(w.Graph, w.Catalog)
	if err != nil {
		return nil, err
	}
	st := &workerState{an: an, db: w.Data(scale), css: make(map[css.Options]*css.Result)}
	wk.states[key] = st
	return st, nil
}

// cssResult returns (building once per option set) the workflow's CSS
// result, which the physical compiler needs to bind statistic taps.
func (wk *Worker) cssResult(st *workerState, opt css.Options) (*css.Result, error) {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if res, ok := st.css[opt]; ok {
		return res, nil
	}
	res, err := css.Generate(st.an, opt)
	if err != nil {
		return nil, err
	}
	st.css[opt] = res
	return res, nil
}

// encodeTable renders a table into its canonical wire blob.
func encodeTable(t *data.Table) ([]byte, error) {
	var buf bytes.Buffer
	if err := data.WriteTable(&buf, t); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeTable parses a canonical table blob (nil-presence aware).
func decodeTable(blob []byte) (*data.Table, error) {
	if len(blob) == 0 {
		return nil, errors.New("serve: empty table blob")
	}
	return data.ReadTable(bytes.NewReader(blob))
}
