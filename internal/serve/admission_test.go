package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestAdmissionShedAndQueue drives the limiter deterministically: with one
// slot and a queue of one, the second acquire waits, the third sheds with
// a typed BusyError, and releasing the slot admits the waiter.
func TestAdmissionShedAndQueue(t *testing.T) {
	a := newAdmission(1, 1)
	ctx := context.Background()

	release1, err := a.acquire(ctx)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	admitted := make(chan func(), 1)
	go func() {
		rel, err := a.acquire(ctx)
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		}
		admitted <- rel
	}()
	// Wait until the goroutine occupies the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if w, _ := a.depth(); w == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued acquire never started waiting")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: the third caller is shed immediately.
	_, err = a.acquire(ctx)
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("third acquire = %v, want *BusyError", err)
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("BusyError.RetryAfter = %v", busy.RetryAfter)
	}

	release1()
	select {
	case rel := <-admitted:
		rel()
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not admitted after release")
	}
	if w, in := a.depth(); w != 0 || in != 0 {
		t.Fatalf("depth after drain: waiting=%d inflight=%d", w, in)
	}

	// A waiter whose context dies leaves the queue.
	release1, err = a.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		_, err := a.acquire(cctx)
		errc <- err
	}()
	for {
		if w, _ := a.depth(); w == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	release1()
}

// TestAdmissionUnlimited: MaxSolves 0 admits everything and never sheds.
func TestAdmissionUnlimited(t *testing.T) {
	a := newAdmission(0, 0)
	var rels []func()
	for i := 0; i < 100; i++ {
		rel, err := a.acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		rels = append(rels, rel)
	}
	if _, in := a.depth(); in != 100 {
		t.Fatalf("inflight = %d", in)
	}
	for _, rel := range rels {
		rel()
	}
	if _, in := a.depth(); in != 0 {
		t.Fatalf("inflight after release = %d", in)
	}
}

// TestServe429Shed: with one solve slot held and a zero-length queue, an
// optimize request is shed as a typed 429 with Retry-After — and the shed
// shows up in /metrics. The slot is occupied deterministically through the
// limiter itself, not by racing a real solve.
func TestServe429Shed(t *testing.T) {
	doc, db := tinyWorkflow(t, 11, 600)
	srv, ts := newTestServer(t, doc, Options{MaxSolves: 1, SolveQueue: 0, DisableCache: true})
	stream := observedStream(t, doc, db)
	if resp, body := post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", stream); resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: %d %s", resp.StatusCode, body)
	}

	release, err := srv.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/optimize", "application/json", []byte(`{"workflow":"tiny"}`))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("optimize under full admission: %d %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var shed struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retryAfter"`
	}
	if err := json.Unmarshal(body, &shed); err != nil {
		t.Fatalf("429 body %s: %v", body, err)
	}
	if shed.RetryAfter < 1 || !strings.Contains(shed.Error, "capacity") {
		t.Fatalf("429 body %+v", shed)
	}
	resp, body = post(t, ts.URL+"/v1/estimate", "application/json", []byte(`{"workflow":"tiny"}`))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("estimate under full admission: %d %s", resp.StatusCode, body)
	}

	_, mbody := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(mbody), "etlopt_serve_sheds_total 2") {
		t.Fatalf("metrics missing shed count:\n%s", mbody)
	}

	// Releasing the slot restores service.
	release()
	resp, body = post(t, ts.URL+"/v1/optimize", "application/json", []byte(`{"workflow":"tiny"}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize after release: %d %s", resp.StatusCode, body)
	}
}
