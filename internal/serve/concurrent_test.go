package serve

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightSingleSolve proves duplicate suppression at the
// primitive: N concurrent Do calls with one key execute fn exactly once,
// deterministically — fn blocks until every caller has launched, so no
// caller can arrive after the flight lands.
func TestSingleflightSingleSolve(t *testing.T) {
	const n = 32
	var g group
	var execs, sharedCount atomic.Int64
	launched := make(chan struct{}, n)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			launched <- struct{}{}
			v, err, shared := g.Do("key", func() (any, error) {
				execs.Add(1)
				<-release
				return "solved", nil
			})
			if err != nil || v.(string) != "solved" {
				t.Errorf("Do = %v, %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-launched
	}
	// Every goroutine has launched; give them a beat to reach Do, then
	// release the single executing call.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Fatalf("%d callers shared, want %d", got, n-1)
	}
	// The key is released after the flight: a later call runs fn again.
	_, _, shared := g.Do("key", func() (any, error) { return "again", nil })
	if shared {
		t.Fatal("post-flight call reported shared")
	}
	if execs.Load() != 1 {
		t.Fatal("post-flight call reused the old fn")
	}
}

// TestServedSolveSingleflight drives the server's solved() path the same
// way: concurrent identical requests must cost one solver execution and
// yield one set of bytes.
func TestServedSolveSingleflight(t *testing.T) {
	doc, _ := tinyWorkflow(t, 11, 600)
	srv, _ := newTestServer(t, doc, Options{})
	const n = 16
	var execs atomic.Int64
	release := make(chan struct{})
	launched := make(chan struct{}, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			launched <- struct{}{}
			body, _, err := srv.solved(context.Background(), "tiny", 1, "k", func() ([]byte, error) {
				execs.Add(1)
				<-release
				return []byte(`{"x":1}`), nil
			})
			if err != nil {
				t.Errorf("solved: %v", err)
			}
			bodies[i] = body
		}(i)
	}
	for i := 0; i < n; i++ {
		<-launched
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("solver executed %d times for one key, want 1", got)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("caller %d got different bytes", i)
		}
	}
	// And the result is now cached.
	_, hit, err := srv.solved(context.Background(), "tiny", 1, "k", func() ([]byte, error) {
		t.Fatal("cached key re-solved")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("cache after flight: hit=%v err=%v", hit, err)
	}
}

// TestConcurrentOptimizeRequests exercises the full HTTP path under the
// race detector: parallel optimize and estimate requests against one
// workflow, all of which must succeed with identical bodies per endpoint —
// and a cache-disabled server over the same statistics must produce
// byte-identical responses.
func TestConcurrentOptimizeRequests(t *testing.T) {
	doc, db := tinyWorkflow(t, 11, 600)
	srv, ts := newTestServer(t, doc, Options{})
	stream := observedStream(t, doc, db)
	if resp, body := post(t, ts.URL+"/v1/observe?workflow=tiny", "application/octet-stream", stream); resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: %d %s", resp.StatusCode, body)
	}

	const n = 12
	optBodies := make([][]byte, n)
	estBodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/v1/optimize", "application/json", []byte(`{"workflow":"tiny"}`))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("optimize %d: %d %s", i, resp.StatusCode, body)
			}
			optBodies[i] = body
			resp, body = post(t, ts.URL+"/v1/estimate", "application/json", []byte(`{"workflow":"tiny"}`))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("estimate %d: %d %s", i, resp.StatusCode, body)
			}
			estBodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(optBodies[0], optBodies[i]) {
			t.Fatalf("optimize response %d differs", i)
		}
		if !bytes.Equal(estBodies[0], estBodies[i]) {
			t.Fatalf("estimate response %d differs", i)
		}
	}

	// Accounting: every request either hit the cache, solved, or shared an
	// in-flight solve.
	srv.metrics.mu.Lock()
	total := srv.metrics.cacheHits + srv.metrics.solves + srv.metrics.shared
	solves := srv.metrics.solves
	srv.metrics.mu.Unlock()
	if total != 2*n {
		t.Fatalf("request accounting: hits+solves+shared = %d, want %d", total, 2*n)
	}
	if solves < 2 {
		t.Fatalf("solves = %d, want at least one per endpoint", solves)
	}

	// Cache off: byte-identical responses, every request solving or
	// sharing (never served from a response cache).
	srvOff, tsOff := newTestServer(t, doc, Options{DisableCache: true})
	if resp, body := post(t, tsOff.URL+"/v1/observe?workflow=tiny", "application/octet-stream", stream); resp.StatusCode != http.StatusOK {
		t.Fatalf("observe (cache off): %d %s", resp.StatusCode, body)
	}
	for i := 0; i < 2; i++ {
		resp, body := post(t, tsOff.URL+"/v1/optimize", "application/json", []byte(`{"workflow":"tiny"}`))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("optimize (cache off): %d %s", resp.StatusCode, body)
		}
		if resp.Header.Get("X-Cache") != "miss" {
			t.Fatalf("cache-off request %d reported X-Cache %q", i, resp.Header.Get("X-Cache"))
		}
		if !bytes.Equal(body, optBodies[0]) {
			t.Fatal("cache-off optimize body differs from cache-on body")
		}
	}
	resp, body := post(t, tsOff.URL+"/v1/estimate", "application/json", []byte(`{"workflow":"tiny"}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate (cache off): %d %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, estBodies[0]) {
		t.Fatal("cache-off estimate body differs from cache-on body")
	}
	srvOff.metrics.mu.Lock()
	offHits := srvOff.metrics.cacheHits
	srvOff.metrics.mu.Unlock()
	if offHits != 0 {
		t.Fatalf("cache-off server recorded %d cache hits", offHits)
	}
}
