package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestNewHTTPServerSetsAllTimeouts pins the hardening contract: every
// connection-state timeout is set, zero fields fall back to defaults, and
// explicit values win.
func TestNewHTTPServerSetsAllTimeouts(t *testing.T) {
	d := DefaultTimeouts()
	srv := newHTTPServer(":0", http.NewServeMux(), Timeouts{})
	if srv.ReadHeaderTimeout != d.ReadHeader || srv.ReadTimeout != d.Read ||
		srv.WriteTimeout != d.Write || srv.IdleTimeout != d.Idle {
		t.Errorf("zero Timeouts must harden with defaults, got %+v", srv)
	}
	if d.ReadHeader <= 0 || d.Read <= 0 || d.Write <= 0 || d.Idle <= 0 {
		t.Fatalf("DefaultTimeouts leaves a connection state unbounded: %+v", d)
	}

	custom := Timeouts{ReadHeader: time.Second, Read: 2 * time.Second, Write: 3 * time.Second, Idle: 4 * time.Second}
	srv = newHTTPServer(":0", http.NewServeMux(), custom)
	if srv.ReadHeaderTimeout != custom.ReadHeader || srv.ReadTimeout != custom.Read ||
		srv.WriteTimeout != custom.Write || srv.IdleTimeout != custom.Idle {
		t.Errorf("explicit Timeouts must be honoured, got %+v", srv)
	}
}

// TestServerClosesSlowHeaderClient is the behavioral pin for the slowloris
// guard: a connection that sends no request headers must be closed by the
// server within (roughly) the ReadHeader timeout instead of holding its
// slot forever.
func TestServerClosesSlowHeaderClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newHTTPServer("", NewWorker().Handler(), Timeouts{ReadHeader: 150 * time.Millisecond})
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Dribble a partial request line, then stall: a compliant hardened
	// server must hang up once ReadHeader expires.
	if _, err := conn.Write([]byte("GET /v1/worker/health HT")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err = io.ReadAll(conn)
	elapsed := time.Since(start)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatalf("server kept the stalled connection open past %v", elapsed)
		}
		// Any other error (e.g. connection reset) is also a close: fine.
	}
	if elapsed > 3*time.Second {
		t.Errorf("stalled connection closed only after %v; want ~ReadHeader (150ms)", elapsed)
	}
}

// TestServeUntilDrainsOnCancel pins serveUntil's lifecycle: cancelling the
// context shuts the server down cleanly (nil error) and frees the port.
func TestServeUntilDrainsOnCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- NewWorker().ListenAndServe(ctx, addr) }()

	// Wait for the server to come up, then stop it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/v1/worker/health")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never came up on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean shutdown must return nil, got %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("ListenAndServe did not return after cancellation")
	}
}
