package faults

import (
	"errors"
	"fmt"
	"testing"
)

func TestNilInjectorIsSilent(t *testing.T) {
	var f *Injector
	if err := f.At(SourceRead, "src:0:0", 0); err != nil {
		t.Fatalf("nil injector injected %v", err)
	}
	if (&Injector{}).At(Operator, "op:0:1", 0) != nil {
		t.Fatal("zero-value injector (rate 0) injected a fault")
	}
}

func TestRateOneFaultsEverySite(t *testing.T) {
	f := New(1, 1, 1, 0)
	for i := 0; i < 50; i++ {
		site := fmt.Sprintf("op:%d:%d", i%5, i)
		err := f.At(Operator, site, 0)
		if err == nil {
			t.Fatalf("rate=1 did not fault site %s", site)
		}
		var fe *Error
		if !errors.As(err, &fe) || fe.Site != site || fe.Kind != Operator || !fe.Transient {
			t.Fatalf("unexpected fault %v", err)
		}
		// Transient=1: the first retry clears.
		if err := f.At(Operator, site, 1); err != nil {
			t.Fatalf("attempt 1 should clear, got %v", err)
		}
	}
}

func TestPermanentFaultsNeverClear(t *testing.T) {
	f := New(7, 1, 0, Tap)
	for attempt := 0; attempt < 4; attempt++ {
		err := f.At(Tap, "tap:x", attempt)
		if err == nil {
			t.Fatalf("permanent fault cleared on attempt %d", attempt)
		}
		if IsTransient(err) {
			t.Fatalf("permanent fault reported transient: %v", err)
		}
	}
}

func TestKindMaskRestricts(t *testing.T) {
	f := New(1, 1, 1, SourceRead|Tap)
	if f.At(Operator, "op:0:0", 0) != nil {
		t.Fatal("masked-out kind faulted")
	}
	if f.At(SourceRead, "src:0:0", 0) == nil || f.At(Tap, "tap:y", 0) == nil {
		t.Fatal("masked-in kind did not fault")
	}
}

func TestDecisionIsDeterministicAndSeedSensitive(t *testing.T) {
	a := New(3, 0.5, 1, 0)
	b := New(3, 0.5, 1, 0)
	diff := false
	for i := 0; i < 200; i++ {
		site := fmt.Sprintf("site-%d", i)
		ea := a.At(Tap, site, 0)
		eb := b.At(Tap, site, 0)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("same seed diverged at %s", site)
		}
		if (ea == nil) != (New(4, 0.5, 1, 0).At(Tap, site, 0) == nil) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 3 and 4 made identical decisions on 200 sites")
	}
}

func TestRateIsRoughlyCalibrated(t *testing.T) {
	f := New(11, 0.3, 1, 0)
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if f.At(Operator, fmt.Sprintf("s%d", i), 0) != nil {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.25 || got > 0.35 {
		t.Fatalf("rate 0.3 hit %.3f of sites", got)
	}
}

func TestIsTransientUnwraps(t *testing.T) {
	err := fmt.Errorf("block 3: %w", &Error{Kind: SourceRead, Site: "src:3:0", Transient: true})
	if !IsTransient(err) {
		t.Fatal("wrapped transient fault not recognized")
	}
	if IsTransient(errors.New("organic")) {
		t.Fatal("organic error reported transient")
	}
	if !IsInjected(err) {
		t.Fatal("wrapped fault not recognized as injected")
	}
}

func TestParse(t *testing.T) {
	f, err := Parse("seed=42,rate=0.25,transient=2,kinds=source|tap")
	if err != nil {
		t.Fatal(err)
	}
	if f.Seed != 42 || f.Rate != 0.25 || f.Transient != 2 || f.Kinds != SourceRead|Tap {
		t.Fatalf("parsed %+v", f)
	}
	if got := f.String(); got != "seed=42,rate=0.25,transient=2,kinds=source|tap" {
		t.Fatalf("String() = %q", got)
	}

	if f, err := Parse(""); err != nil || f != nil {
		t.Fatalf("empty spec: %v, %v", f, err)
	}
	// Defaults: a bare rate spec faults everything once, transiently.
	f, err = Parse("rate=1")
	if err != nil {
		t.Fatal(err)
	}
	if f.Seed != 1 || f.Transient != 1 || f.Kinds != 0 {
		t.Fatalf("defaults %+v", f)
	}
	for _, bad := range []string{"rate=2", "rate=x", "seed=-1", "transient=-1", "kinds=disk", "novalue"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
