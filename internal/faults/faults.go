// Package faults provides a deterministic, seed-driven fault injector for
// the execution engines. Production ETL runs fail in a handful of
// characteristic ways — a source extract cannot be read, an operator's
// runtime dependency breaks, a statistic tap's side memory is exhausted,
// the run's row budget trips — and the engines' recovery machinery (block
// retry, checkpoint/resume, degraded observation) needs all of them to be
// reproducible on demand. The injector decides every fault as a pure
// function of (seed, kind, site, attempt), so a faulted run is exactly
// repeatable across engines, worker counts and processes: the same sites
// fail on the same attempts, and a retried transient fault always clears.
//
// A nil *Injector is valid and injects nothing; the engines' hot paths pay
// a single nil check, mirroring how metrics collection stays free when off.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Kind classifies an injection point. Kinds form a bitmask so an injector
// can restrict itself to a subset of fault classes.
type Kind uint8

// The injectable fault classes.
const (
	// SourceRead faults a block input's scan (base relation or upstream
	// boundary output).
	SourceRead Kind = 1 << iota
	// Operator faults a physical operator (filter, transform, join, ...).
	Operator
	// Tap faults a statistic observation point. Transient tap faults abort
	// the block attempt (the retry re-observes); permanent ones mark the
	// statistic unavailable and degrade the run.
	Tap
	// Budget faults the run's row-budget accounting, simulating exhaustion
	// of the intermediate-result allowance.
	Budget
	// Network faults a coordinator↔worker exchange of the distributed
	// execution mode: a request or response is dropped, delayed or
	// truncated (the perturbation is itself a pure function of seed and
	// site — see NetworkAt). In-process runs never consult network sites,
	// so the kind is inert outside distributed mode.
	Network

	// AllKinds enables every fault class.
	AllKinds = SourceRead | Operator | Tap | Budget | Network
)

// String names a single kind (bitmask combinations render as "multiple").
func (k Kind) String() string {
	switch k {
	case SourceRead:
		return "source-read"
	case Operator:
		return "operator"
	case Tap:
		return "tap"
	case Budget:
		return "budget"
	case Network:
		return "network"
	default:
		return "multiple"
	}
}

// Error is one injected fault. It is typed so recovery layers can
// distinguish injected faults (and their transience) from organic errors.
type Error struct {
	// Kind is the faulted class.
	Kind Kind
	// Site identifies the injection point (stable across engines).
	Site string
	// Transient reports whether a retry of the same site will clear.
	Transient bool
}

func (e *Error) Error() string {
	mode := "permanent"
	if e.Transient {
		mode = "transient"
	}
	return fmt.Sprintf("injected %s %s fault at %s", mode, e.Kind, e.Site)
}

// IsTransient reports whether err is (or wraps) a transient injected
// fault — the class the engines retry with backoff.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Transient
}

// IsInjected reports whether err is (or wraps) any injected fault.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// Injector decides deterministically which sites fault. The zero value
// injects nothing (Rate 0); a nil *Injector likewise injects nothing.
type Injector struct {
	// Seed drives the per-site fault decision.
	Seed uint64
	// Rate is the per-site fault probability in [0, 1]. Each site's
	// decision is a fixed function of (Seed, kind, site): Rate=1 faults
	// every matching site, 0 faults none.
	Rate float64
	// Transient is the number of leading attempts that fail at a faulted
	// site before it clears; 0 makes faults permanent (every attempt
	// fails).
	Transient int
	// Kinds restricts injection to the masked fault classes; 0 means all.
	Kinds Kind
}

// New returns an injector with the given parameters (kinds 0 = all).
func New(seed uint64, rate float64, transient int, kinds Kind) *Injector {
	return &Injector{Seed: seed, Rate: rate, Transient: transient, Kinds: kinds}
}

// At consults the injector for one site on one attempt, returning the
// injected fault or nil. The decision depends only on (Seed, kind, site,
// attempt), never on call order, so parallel and sequential executions
// fault identically.
func (f *Injector) At(kind Kind, site string, attempt int) error {
	if f == nil || f.Rate <= 0 {
		return nil
	}
	if f.Kinds != 0 && f.Kinds&kind == 0 {
		return nil
	}
	if !f.hits(kind, site) {
		return nil
	}
	transient := f.Transient > 0
	if transient && attempt >= f.Transient {
		return nil
	}
	return &Error{Kind: kind, Site: site, Transient: transient}
}

// hits evaluates the per-site Bernoulli draw: an FNV-1a hash of
// (seed, kind, site), normalized to [0, 1), compared against Rate.
func (f *Injector) hits(kind Kind, site string) bool {
	h := fnv.New64a()
	var buf [9]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(f.Seed >> (8 * i))
	}
	buf[8] = byte(kind)
	h.Write(buf[:])
	h.Write([]byte(site))
	// FNV-1a mixes its low bits well but not its high ones on short
	// inputs; a splitmix64-style finalizer spreads the entropy before the
	// top 53 bits become a uniform float64 in [0, 1).
	x := h.Sum64()
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53)
	return u < f.Rate
}

// NetMode is the deterministic perturbation an injected network fault
// applies to a coordinator↔worker exchange.
type NetMode uint8

// The network perturbations.
const (
	// NetDrop fails the exchange before the request is sent.
	NetDrop NetMode = iota
	// NetDelay delays the exchange (it still succeeds) — the perturbation
	// that exercises lease/heartbeat timing without consuming a retry.
	NetDelay
	// NetTruncate sends the request but cuts the response short, so the
	// caller sees a decode failure after the worker did the work — the
	// lost-ACK case idempotent block commits exist for.
	NetTruncate
)

// String names the perturbation.
func (m NetMode) String() string {
	switch m {
	case NetDrop:
		return "drop"
	case NetDelay:
		return "delay"
	case NetTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("NetMode(%d)", int(m))
	}
}

// NetworkAt consults the injector for one network site on one attempt. A
// nil error means the exchange is clean; otherwise the returned mode says
// how the exchange is perturbed. Like At, the decision — including which
// of the three perturbations applies — is a pure function of (Seed, site,
// attempt), so distributed fault runs are exactly repeatable.
func (f *Injector) NetworkAt(site string, attempt int) (NetMode, error) {
	err := f.At(Network, site, attempt)
	if err == nil {
		return 0, nil
	}
	// The mode reuses the site hash with a distinct stream tag so it is
	// independent of the hit/miss draw but just as deterministic.
	h := fnv.New64a()
	var buf [9]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(f.Seed >> (8 * i))
	}
	buf[8] = byte(Network) ^ 0xa5
	h.Write(buf[:])
	h.Write([]byte(site))
	x := h.Sum64()
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return NetMode(x % 3), err
}

// Parse builds an injector from a CLI spec of comma-separated fields:
//
//	seed=<uint>,rate=<float>,transient=<int>,kinds=<k|k|...>
//
// where each kind is one of source, op, tap, budget, net (default: all).
// Omitted fields default to seed=1, rate=1, transient=1, kinds=all — a
// spec of "rate=1" alone forces one transient fault per site and lets
// every retry succeed. An empty spec returns a nil injector.
func Parse(spec string) (*Injector, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	f := &Injector{Seed: 1, Rate: 1, Transient: 1}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: field %q is not key=value", field)
		}
		switch key {
		case "seed":
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: seed %q: %w", val, err)
			}
			f.Seed = v
		case "rate":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || v < 0 || v > 1 {
				return nil, fmt.Errorf("faults: rate %q must be a float in [0,1]", val)
			}
			f.Rate = v
		case "transient":
			v, err := strconv.Atoi(val)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("faults: transient %q must be a non-negative integer", val)
			}
			f.Transient = v
		case "kinds":
			var mask Kind
			for _, name := range strings.Split(val, "|") {
				switch strings.TrimSpace(name) {
				case "source":
					mask |= SourceRead
				case "op":
					mask |= Operator
				case "tap":
					mask |= Tap
				case "budget":
					mask |= Budget
				case "net", "network":
					mask |= Network
				case "all":
					mask |= AllKinds
				default:
					return nil, fmt.Errorf("faults: unknown kind %q (want source|op|tap|budget|net|all)", name)
				}
			}
			f.Kinds = mask
		default:
			return nil, fmt.Errorf("faults: unknown field %q (want seed, rate, transient, kinds)", key)
		}
	}
	return f, nil
}

// String renders the injector back into its Parse spec.
func (f *Injector) String() string {
	if f == nil {
		return ""
	}
	spec := fmt.Sprintf("seed=%d,rate=%g,transient=%d", f.Seed, f.Rate, f.Transient)
	if f.Kinds != 0 && f.Kinds != AllKinds {
		var names []string
		for _, k := range []struct {
			kind Kind
			name string
		}{{SourceRead, "source"}, {Operator, "op"}, {Tap, "tap"}, {Budget, "budget"}, {Network, "net"}} {
			if f.Kinds&k.kind != 0 {
				names = append(names, k.name)
			}
		}
		spec += ",kinds=" + strings.Join(names, "|")
	}
	return spec
}
