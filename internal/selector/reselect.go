package selector

import (
	"errors"
	"math"

	"github.com/essential-stats/etlopt/internal/stats"
)

// ErrNoCover reports that no observation set can cover the required
// statistics once the failed ones are excluded: the covering structure has
// no alternate CSS left, and the caller must fall back to the
// pay-as-you-go baseline.
var ErrNoCover = errors.New("selector: no covering observation set avoids the failed statistics")

// Reselect picks the next-cheapest covering selection after observation
// failures, realizing the degradation ladder's middle rung: statistics in
// failed can no longer be observed (their taps fail permanently every run),
// while statistics in have were already observed successfully and are
// available for free. The returned selection covers every required
// statistic without observing any failed one; statistics already in have
// may appear in Selection.Observe (they cost nothing), so callers should
// re-observe only the selection minus have.
//
// ErrNoCover is returned when the covering structure cannot route around
// the failures at all.
func Reselect(u *Universe, have, failed []stats.Key, opt Options) (*Selection, error) {
	v := u.excluding(failed, have)
	// Feasibility first: with everything still-observable observed, do the
	// required statistics close? If not, no solver can succeed.
	allObs := append([]bool(nil), v.Observable...)
	if !v.Covered(allObs) {
		return nil, ErrNoCover
	}
	sel, err := SelectUniverse(v, opt)
	if err != nil {
		if errors.Is(err, errNoSolution) {
			return nil, ErrNoCover
		}
		return nil, err
	}
	return sel, nil
}

// ScopeObserve filters an observation list to the statistics targeting the
// named blocks — the adaptive resume path's observe list: completed blocks'
// statistics are already in the checkpointed write-once store, so only the
// re-optimized cone's blocks still need their taps armed.
func ScopeObserve(observe []stats.Stat, blocks map[int]bool) []stats.Stat {
	out := make([]stats.Stat, 0, len(observe))
	for _, s := range observe {
		if blocks[s.Target.Block] {
			out = append(out, s)
		}
	}
	return out
}

// excluding clones the universe with the failed statistics banned from
// observation (unobservable, infinite cost — they may still be *derived*
// through their candidate sets) and the already-held statistics free
// (observable at zero cost, so every solver keeps them in the base set).
func (u *Universe) excluding(failed, have []stats.Key) *Universe {
	v := &Universe{
		Res:        u.Res,
		Stats:      u.Stats,
		Index:      u.Index,
		Observable: append([]bool(nil), u.Observable...),
		Cost:       append([]float64(nil), u.Cost...),
		Mem:        append([]int64(nil), u.Mem...),
		CSS:        make([][]cssEntry, len(u.CSS)),
		Required:   u.Required,
		usedBy:     make([][]useRef, len(u.Stats)),
	}
	for i := range u.CSS {
		v.CSS[i] = append([]cssEntry(nil), u.CSS[i]...)
	}
	for _, k := range have {
		if i, ok := v.Index[k]; ok {
			v.Observable[i] = true
			v.Cost[i] = 0
		}
	}
	// Bans win over haves: a statistic both held and failed (cannot happen
	// from the engine, which only fails what it never stored) stays banned.
	for _, k := range failed {
		if i, ok := v.Index[k]; ok {
			v.Observable[i] = false
			v.Cost[i] = math.Inf(1)
		}
	}
	v.pruneUnderivable()
	for i := range v.Stats {
		for ci, c := range v.CSS[i] {
			for _, j := range c.inputs {
				v.usedBy[j] = append(v.usedBy[j], useRef{stat: i, css: ci})
			}
		}
	}
	return v
}
