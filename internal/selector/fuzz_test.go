package selector

import (
	"fmt"
	"math"
	"testing"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/wftest"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// TestSolverInvariantsFuzz checks, across random workflows, the invariants
// tying the three solvers together: every solver's selection covers S_C,
// the exact solver never loses to greedy, and (on small universes) the
// paper's LP formulation agrees with the combinatorial optimum.
func TestSolverInvariantsFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz campaign skipped in -short mode")
	}
	for seed := int64(100); seed < 115; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g, cat, _ := wftest.Generate(seed, wftest.Options{MaxRelations: 4})
			an, err := workflow.Analyze(g, cat)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			opt := css.DefaultOptions()
			opt.UnionDivision = seed%2 == 0
			res, err := css.Generate(an, opt)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			coster := costmodel.NewMemoryCoster(res, an.Cat)
			u, err := NewUniverse(res, coster)
			if err != nil {
				t.Fatalf("NewUniverse: %v", err)
			}
			gr, err := Greedy(u)
			if err != nil {
				t.Fatalf("Greedy: %v", err)
			}
			ex, err := Exact(u, ExactOptions{MaxNodes: 1500})
			if err != nil {
				t.Fatalf("Exact: %v", err)
			}
			for name, sel := range map[string]*Selection{"greedy": gr, "exact": ex} {
				observed := make([]bool, len(u.Stats))
				for _, s := range sel.Observe {
					observed[u.Index[s.Key()]] = true
				}
				if !u.Covered(observed) {
					t.Errorf("%s selection does not cover S_C", name)
				}
			}
			if ex.Cost > gr.Cost+1e-6 {
				t.Errorf("exact cost %v worse than greedy %v", ex.Cost, gr.Cost)
			}
			// Small instances must be solved to proven optimality; wider
			// ones may exhaust the node cap and return their incumbent.
			if len(u.Stats) <= 200 && !ex.Optimal {
				t.Errorf("exact did not prove optimality (nodes %d, stats %d)", ex.Nodes, len(u.Stats))
			}
			// LP agreement on small universes only (the dense simplex
			// re-solves from scratch at every branch-and-bound node, so it
			// is the bottleneck, not the formulation). When the node budget
			// expires before proof, the incumbent must still not beat the
			// combinatorial optimum.
			if len(u.Stats) <= 60 && ex.Optimal {
				lpSel, err := SolveLP(u, LPOptions{MaxNodes: 500})
				if err != nil {
					t.Fatalf("SolveLP: %v", err)
				}
				if lpSel.Optimal && math.Abs(lpSel.Cost-ex.Cost) > 1e-6 {
					t.Errorf("LP cost %v != exact %v", lpSel.Cost, ex.Cost)
				}
				if lpSel.Cost < ex.Cost-1e-6 {
					t.Errorf("LP found %v below the proven optimum %v", lpSel.Cost, ex.Cost)
				}
			}
		})
	}
}
