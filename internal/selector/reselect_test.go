package selector

import (
	"errors"
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/stats"
)

// TestReselectRoutesAroundFailure bans each statistic of the normal
// selection in turn and checks that the alternate selection still covers
// every required statistic without observing the banned one.
func TestReselectRoutesAroundFailure(t *testing.T) {
	g, cat := retail(t)
	u := buildUniverse(t, g, cat, css.DefaultOptions())
	sel, err := SelectUniverse(u, Options{Method: MethodExact})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	for _, s := range sel.Observe {
		failed := []stats.Key{s.Key()}
		alt, err := Reselect(u, nil, failed, Options{Method: MethodExact})
		if err != nil {
			if errors.Is(err, ErrNoCover) {
				// Some statistics are genuinely unroutable (the only
				// covering CSS needs them); that is the payg rung.
				continue
			}
			t.Fatalf("Reselect without %v: %v", s.Key(), err)
		}
		observed := make([]bool, len(u.Stats))
		for _, a := range alt.Observe {
			if a.Key() == s.Key() {
				t.Fatalf("alternate selection still observes failed %v", s.Key())
			}
			observed[u.Index[a.Key()]] = true
		}
		if !u.Covered(observed) {
			t.Fatalf("alternate selection without %v does not cover S_C", s.Key())
		}
		if alt.Cost < sel.Cost {
			t.Fatalf("alternate selection cheaper (%.1f) than the unconstrained optimum (%.1f)", alt.Cost, sel.Cost)
		}
	}
}

// TestReselectHaveIsFree prices already-observed statistics at zero: with
// the whole original selection held, the alternate selection costs nothing
// new.
func TestReselectHaveIsFree(t *testing.T) {
	g, cat := retail(t)
	u := buildUniverse(t, g, cat, css.DefaultOptions())
	sel, err := SelectUniverse(u, Options{Method: MethodExact})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	have := make([]stats.Key, 0, len(sel.Observe))
	for _, s := range sel.Observe {
		have = append(have, s.Key())
	}
	alt, err := Reselect(u, have, nil, Options{Method: MethodExact})
	if err != nil {
		t.Fatalf("Reselect with everything held: %v", err)
	}
	if alt.Cost != 0 {
		t.Fatalf("selection over held statistics should be free, cost %.1f", alt.Cost)
	}
}

// TestReselectAllFailed bans every observable statistic: nothing covers,
// the payg fallback is the only option left.
func TestReselectAllFailed(t *testing.T) {
	g, cat := retail(t)
	u := buildUniverse(t, g, cat, css.DefaultOptions())
	failed := make([]stats.Key, 0, len(u.Stats))
	for i, s := range u.Stats {
		if u.Observable[i] {
			failed = append(failed, s.Key())
		}
	}
	if _, err := Reselect(u, nil, failed, Options{Method: MethodExact}); !errors.Is(err, ErrNoCover) {
		t.Fatalf("want ErrNoCover with every observable banned, got %v", err)
	}
}

// TestReselectLeavesUniverseIntact verifies Reselect works on a clone: the
// original universe still selects identically afterwards.
func TestReselectLeavesUniverseIntact(t *testing.T) {
	g, cat := retail(t)
	u := buildUniverse(t, g, cat, css.DefaultOptions())
	before, err := SelectUniverse(u, Options{Method: MethodExact})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	_, _ = Reselect(u, nil, []stats.Key{before.Observe[0].Key()}, Options{Method: MethodExact})
	after, err := SelectUniverse(u, Options{Method: MethodExact})
	if err != nil {
		t.Fatalf("Select after Reselect: %v", err)
	}
	if before.Cost != after.Cost || len(before.Observe) != len(after.Observe) {
		t.Fatalf("Reselect mutated the universe: cost %v→%v", before.Cost, after.Cost)
	}
}
