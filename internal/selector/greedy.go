package selector

import (
	"fmt"
	"math"
)

// Greedy implements the heuristic of Section 5.3: repeatedly pick the
// cheapest way to cover one of the still-uncovered required statistics,
// re-pricing after every pick because statistics already chosen are free
// for subsequent covers. Zero-cost observable statistics (e.g. free source
// statistics, Section 6.2) are taken up front.
func Greedy(u *Universe) (*Selection, error) {
	observed := make([]bool, len(u.Stats))
	for i := range u.Stats {
		if u.Observable[i] && u.Cost[i] == 0 {
			observed[i] = true
		}
	}
	if err := greedyComplete(u, observed, nil); err != nil {
		return nil, err
	}
	return &Selection{
		Observe: u.StatsOf(observed),
		Cost:    u.ObservedCost(observed),
		Memory:  u.ObservedMemory(observed),
		Optimal: false,
		Method:  "greedy",
	}, nil
}

// greedyComplete extends the observation set until every required statistic
// is covered, never touching banned statistics. It mutates observed.
func greedyComplete(u *Universe, observed, banned []bool) error {
	for {
		closed := u.Closure(observed)
		// Free pricing: anything already computable costs nothing more.
		var uncovered []int
		for _, r := range u.Required {
			if !closed[r] {
				uncovered = append(uncovered, r)
			}
		}
		if len(uncovered) == 0 {
			return nil
		}
		// One shared cost pass prices every uncovered requirement; only the
		// winner's derivation is walked out.
		dist := u.deriveCosts(nil, closed, banned, deriveSum)
		bestCost := math.Inf(1)
		bestR := -1
		for _, r := range uncovered {
			if math.IsInf(dist[r], 1) {
				return fmt.Errorf("selector: required statistic %v not derivable", u.Stats[r].Key())
			}
			// Ties break on the lower statistic index, so the pick (and
			// hence the whole greedy run) is deterministic regardless of
			// the order requirements were registered in.
			if dist[r] < bestCost || dist[r] == bestCost && r < bestR {
				bestCost = dist[r]
				bestR = r
			}
		}
		bestLeaves, _, ok := u.walkDerivation(bestR, dist, nil, closed, banned)
		if !ok {
			return fmt.Errorf("selector: required statistic %v not derivable", u.Stats[bestR].Key())
		}
		if len(bestLeaves) == 0 {
			// The cheapest uncovered statistic became computable for free;
			// the closure recomputation above would have caught that, so an
			// empty leaf set with positive cost is a logic error.
			return fmt.Errorf("selector: greedy made no progress (cost %v)", bestCost)
		}
		for _, i := range bestLeaves {
			observed[i] = true
		}
	}
}
