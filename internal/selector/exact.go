package selector

import (
	"math"
	"time"
)

// ExactOptions tune the combinatorial branch-and-bound solver.
type ExactOptions struct {
	// MaxNodes caps search nodes (0 = 200000).
	MaxNodes int
	// Timeout caps wall-clock time (0 = none).
	Timeout time.Duration
}

// Exact finds a provably minimum-cost observation set by branch and bound
// over the observable statistics: feasibility is the closure property of
// Section 5.1, the lower bound combines committed cost with the cheapest
// possible completion of the most expensive uncovered requirement, and
// greedy completions supply incumbents and branching choices. When the node
// budget runs out, the best incumbent is returned with Optimal = false.
func Exact(u *Universe, opt ExactOptions) (*Selection, error) {
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	deadline := time.Time{}
	if opt.Timeout > 0 {
		deadline = time.Now().Add(opt.Timeout)
	}

	n := len(u.Stats)
	// Zero-cost observables are always taken: they can only help.
	baseIn := make([]bool, n)
	for i := 0; i < n; i++ {
		if u.Observable[i] && u.Cost[i] == 0 {
			baseIn[i] = true
		}
	}

	// Incumbent from greedy.
	inc := append([]bool(nil), baseIn...)
	if err := greedyComplete(u, inc, nil); err != nil {
		return nil, err
	}
	bestCost := u.ObservedCost(inc)
	best := inc

	type node struct {
		in, out []bool
	}
	stack := []node{{in: baseIn, out: make([]bool, n)}}
	nodes := 0
	exhausted := false

	for len(stack) > 0 {
		if nodes >= maxNodes || (!deadline.IsZero() && time.Now().After(deadline)) {
			exhausted = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		committed := u.ObservedCost(nd.in)
		if committed >= bestCost-1e-9 {
			continue
		}
		closedIn := u.Closure(nd.in)
		// Lower bound and feasibility in one pass: the max-aggregated
		// derivation price of each uncovered requirement (∞ = no
		// derivation avoids the banned statistics at all).
		var lbExtra float64
		worst := -1
		dist := u.deriveCosts(nil, closedIn, nd.out, deriveMax)
		covered := true
		infeasible := false
		for _, r := range u.Required {
			if closedIn[r] {
				continue
			}
			covered = false
			if math.IsInf(dist[r], 1) {
				infeasible = true
				break
			}
			if dist[r] > lbExtra {
				lbExtra = dist[r]
				worst = r
			}
		}
		if infeasible {
			continue
		}
		if covered {
			if committed < bestCost {
				bestCost = committed
				best = append([]bool(nil), nd.in...)
			}
			continue
		}
		if committed+lbExtra >= bestCost-1e-9 {
			continue
		}
		// Branch on the most expensive unchosen leaf in the cheapest
		// derivation of the most expensive uncovered requirement. An
		// occasional greedy dive refreshes the incumbent; running it at
		// every node would dominate the solve.
		if nodes&0x3F == 1 {
			completion := append([]bool(nil), nd.in...)
			if err := greedyComplete(u, completion, nd.out); err == nil {
				if compCost := u.ObservedCost(completion); compCost < bestCost {
					bestCost = compCost
					best = completion
				}
			}
		}
		leaves, _, ok := u.cheapestDerivation(worst, nil, closedIn, nd.out)
		if !ok {
			continue
		}
		branch := -1
		var branchCost float64
		for _, i := range leaves {
			if !nd.in[i] && u.Cost[i] > branchCost {
				branch = i
				branchCost = u.Cost[i]
			}
		}
		if branch < 0 {
			continue
		}
		// Branch: include / exclude the chosen statistic. Explore the
		// include side first (it matches the greedy completion).
		inSide := node{in: append([]bool(nil), nd.in...), out: nd.out}
		inSide.in[branch] = true
		outSide := node{in: nd.in, out: append([]bool(nil), nd.out...)}
		outSide.out[branch] = true
		stack = append(stack, outSide, inSide)
	}

	if math.IsInf(bestCost, 1) {
		return nil, errNoSolution
	}
	return &Selection{
		Observe: u.StatsOf(best),
		Cost:    bestCost,
		Memory:  u.ObservedMemory(best),
		Optimal: !exhausted,
		Method:  "exact-bb",
		Nodes:   nodes,
	}, nil
}
