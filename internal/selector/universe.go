// Package selector chooses the optimal set of statistics to observe for an
// ETL workflow, per Section 5 of the paper: given the statistic universe
// and candidate statistics sets from package css and observation costs from
// package costmodel, it finds a minimum-cost set of observable statistics
// such that the cardinality of every sub-expression is computable. Three
// solvers are provided: the paper's 0–1 LP formulation (Section 5.2) solved
// by branch and bound, a combinatorial exact branch and bound with
// closure-based feasibility, and the greedy heuristic of Section 5.3.
package selector

import (
	"fmt"
	"math"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/stats"
)

// cssEntry is a candidate statistics set with integer-indexed inputs.
type cssEntry struct {
	rule   string
	inputs []int
}

// Universe is the integer-indexed form of a css.Result: statistics become
// dense indexes, CSSs become index lists, and costs are precomputed. It is
// the common substrate of all three solvers.
type Universe struct {
	Res *css.Result
	// Stats lists the statistic universe in deterministic order.
	Stats []stats.Stat
	// Index maps statistic keys to indexes in Stats.
	Index map[stats.Key]int
	// Observable marks statistics the initial plan can observe.
	Observable []bool
	// Cost is the observation cost per statistic (+Inf when unobservable).
	Cost []float64
	// Mem is the memory-unit cost per statistic (the Figure 11 metric).
	Mem []int64
	// CSS holds each statistic's candidate sets.
	CSS [][]cssEntry
	// Required lists S_C as indexes.
	Required []int
	// usedBy[i] lists (stat, css ordinal) pairs where statistic i is an
	// input, for incremental closure propagation.
	usedBy [][]useRef
}

type useRef struct{ stat, css int }

// ApproxPolicy admits sketch-backed approximate statistics into the
// universe as cheap alternatives to their exact counterparts.
type ApproxPolicy struct {
	// Enable turns the approximate tier on.
	Enable bool
	// MinAccuracy is the per-statistic accuracy floor in [0, 1]: a sketch
	// variant whose ApproxAccuracy falls below the floor is excluded, so
	// the selector falls back to the exact kind for that statistic.
	MinAccuracy float64
	// Force makes each exact statistic with an admitted sketch sibling
	// unobservable, so every selection must observe the sketch (the approx
	// tier). Without it, sketches merely compete on cost (the auto tier).
	Force bool
}

// UniverseOptions configure universe construction.
type UniverseOptions struct {
	Approx ApproxPolicy
}

// ApproxAccuracy returns the expected accuracy of observing a statistic,
// 1 for exact kinds and the sketch's analytical guarantee for approximate
// ones: 1 − 1.04/√m (the HyperLogLog standard error at m registers) for
// HLLDistinct, and 1 − e/w (the count-min overcount bound at width w) for
// CMHist.
func ApproxAccuracy(s stats.Stat) float64 {
	switch s.Kind {
	case stats.HLLDistinct:
		return 1 - 1.04/math.Sqrt(float64(int64(1)<<stats.DefaultHLLP))
	case stats.CMHist:
		return 1 - math.E/float64(stats.DefaultCMWidth)
	default:
		return 1
	}
}

// NewUniverse indexes a CSS-generation result with the given coster. It
// verifies that every required statistic is derivable at all (observable or
// transitively covered), pruning candidate sets that reference underivable
// statistics.
func NewUniverse(res *css.Result, coster *costmodel.Coster) (*Universe, error) {
	return NewUniverseOpts(res, coster, UniverseOptions{})
}

// NewUniverseOpts is NewUniverse with options. When the approximate tier
// is enabled, each exact statistic with a sketch sibling (Distinct →
// HLLDistinct, single-attribute non-reject Hist → CMHist) that is
// observable under the initial plan and meets the accuracy floor enters
// the universe as an extra observable statistic, and the exact statistic
// gains a one-input candidate set (rules A1 and A2) so observing the
// sketch covers it. The shared css.Result is never mutated.
func NewUniverseOpts(res *css.Result, coster *costmodel.Coster, opts UniverseOptions) (*Universe, error) {
	all := res.AllStats()
	nExact := len(all)
	// variant maps an appended sketch statistic's index back to its exact
	// sibling's index and derivation rule.
	type variantRef struct {
		exact int
		rule  string
	}
	var variants []variantRef
	demoted := make(map[int]bool)
	if opts.Approx.Enable {
		for i := 0; i < nExact; i++ {
			v, ok := stats.ApproxVariant(all[i])
			if !ok || !res.StatObservable(v) {
				continue
			}
			if ApproxAccuracy(v) < opts.Approx.MinAccuracy {
				continue
			}
			rule := "A1"
			if v.Kind == stats.CMHist {
				rule = "A2"
			}
			all = append(all, v)
			variants = append(variants, variantRef{exact: i, rule: rule})
			if opts.Approx.Force {
				demoted[i] = true
			}
		}
	}
	u := &Universe{
		Res:        res,
		Stats:      all,
		Index:      make(map[stats.Key]int, len(all)),
		Observable: make([]bool, len(all)),
		Cost:       make([]float64, len(all)),
		Mem:        make([]int64, len(all)),
		CSS:        make([][]cssEntry, len(all)),
		usedBy:     make([][]useRef, len(all)),
	}
	for i, s := range all {
		u.Index[s.Key()] = i
	}
	for i, s := range all {
		k := s.Key()
		// Appended sketch variants are observable by construction (checked
		// via StatObservable above); they are absent from the result's
		// Observable map, which covers the exact universe only. Forced
		// approx demotes exact statistics whose sketch sibling was
		// admitted.
		u.Observable[i] = (res.Observable[k] || i >= nExact) && !demoted[i]
		// Costs are priced for every statistic, not just currently
		// observable ones: the Section 6.1 budget planner treats any
		// statistic as observable in a re-ordered later run.
		c, err := coster.Cost(s)
		if err != nil {
			return nil, fmt.Errorf("selector: cost of %v: %w", k, err)
		}
		u.Cost[i] = c
		m, err := coster.Memory(s)
		if err != nil {
			return nil, fmt.Errorf("selector: memory of %v: %w", k, err)
		}
		u.Mem[i] = m
		for _, c := range res.CSS[k] {
			entry := cssEntry{rule: c.Rule, inputs: make([]int, 0, len(c.Inputs))}
			ok := true
			for _, in := range c.Inputs {
				j, found := u.Index[in.Key()]
				if !found {
					ok = false
					break
				}
				entry.inputs = append(entry.inputs, j)
			}
			if ok {
				u.CSS[i] = append(u.CSS[i], entry)
			}
		}
	}
	// The exact statistic is derivable from its sketch sibling alone.
	for vi, ref := range variants {
		u.CSS[ref.exact] = append(u.CSS[ref.exact], cssEntry{rule: ref.rule, inputs: []int{nExact + vi}})
	}
	for _, s := range res.Required {
		j, ok := u.Index[s.Key()]
		if !ok {
			return nil, fmt.Errorf("selector: required statistic %v missing from universe", s.Key())
		}
		u.Required = append(u.Required, j)
	}
	u.pruneUnderivable()
	for i := range u.Stats {
		for ci, c := range u.CSS[i] {
			for _, j := range c.inputs {
				u.usedBy[j] = append(u.usedBy[j], useRef{stat: i, css: ci})
			}
		}
	}
	// Sanity: every required statistic must be derivable when everything
	// observable is observed.
	allObs := make([]bool, len(u.Stats))
	copy(allObs, u.Observable)
	closed := u.Closure(allObs)
	for _, r := range u.Required {
		if !closed[r] {
			return nil, fmt.Errorf("selector: required statistic %v not derivable from any observable set",
				u.Stats[r].Key())
		}
	}
	return u, nil
}

// pruneUnderivable removes candidate sets whose inputs can never be
// computed (not observable and, transitively, not derivable), shrinking the
// models the solvers build.
func (u *Universe) pruneUnderivable() {
	possible := make([]bool, len(u.Stats))
	copy(possible, u.Observable)
	for changed := true; changed; {
		changed = false
		for i := range u.Stats {
			if possible[i] {
				continue
			}
			for _, c := range u.CSS[i] {
				all := true
				for _, j := range c.inputs {
					if !possible[j] {
						all = false
						break
					}
				}
				if all {
					possible[i] = true
					changed = true
					break
				}
			}
		}
	}
	for i := range u.CSS {
		var kept []cssEntry
		for _, c := range u.CSS[i] {
			ok := true
			for _, j := range c.inputs {
				if !possible[j] {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, c)
			}
		}
		u.CSS[i] = kept
	}
}

// Closure computes the set of computable statistics given the observed
// ones: the least fixpoint of "observed, or some CSS fully computable"
// (property 1 of Section 5.1). It runs in time linear in total CSS size.
func (u *Universe) Closure(observed []bool) []bool {
	computable := make([]bool, len(u.Stats))
	// remaining[stat][css] counts inputs not yet computable.
	remaining := make([][]int, len(u.Stats))
	var queue []int
	for i := range u.Stats {
		remaining[i] = make([]int, len(u.CSS[i]))
		for ci, c := range u.CSS[i] {
			remaining[i][ci] = len(c.inputs)
		}
		if observed[i] {
			computable[i] = true
			queue = append(queue, i)
		}
	}
	// Zero-input CSSs (none are generated, but be safe).
	for i := range u.Stats {
		if computable[i] {
			continue
		}
		for ci := range u.CSS[i] {
			if remaining[i][ci] == 0 {
				computable[i] = true
				queue = append(queue, i)
				break
			}
		}
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ref := range u.usedBy[i] {
			if computable[ref.stat] {
				continue
			}
			remaining[ref.stat][ref.css]--
			if remaining[ref.stat][ref.css] == 0 {
				computable[ref.stat] = true
				queue = append(queue, ref.stat)
			}
		}
	}
	return computable
}

// Covered reports whether every required statistic is computable under the
// observation set.
func (u *Universe) Covered(observed []bool) bool {
	closed := u.Closure(observed)
	for _, r := range u.Required {
		if !closed[r] {
			return false
		}
	}
	return true
}

// ObservedCost sums the cost of an observation set.
func (u *Universe) ObservedCost(observed []bool) float64 {
	var total float64
	for i, on := range observed {
		if on {
			total += u.Cost[i]
		}
	}
	return total
}

// ObservedMemory sums the memory units of an observation set (the Figure 11
// metric).
func (u *Universe) ObservedMemory(observed []bool) int64 {
	var total int64
	for i, on := range observed {
		if on {
			total += u.Mem[i]
		}
	}
	return total
}

// StatsOf converts an observation bitset into the statistic list.
func (u *Universe) StatsOf(observed []bool) []stats.Stat {
	var out []stats.Stat
	for i, on := range observed {
		if on {
			out = append(out, u.Stats[i])
		}
	}
	return out
}
