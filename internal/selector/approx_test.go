package selector

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// buildApproxUniverse mirrors buildUniverse with the approximate tier and a
// CPU-weighted coster (sketch savings are a CPU effect — memory units
// already favor sketches on large domains).
func buildApproxUniverse(t *testing.T, policy ApproxPolicy) *Universe {
	t.Helper()
	g, cat := retail(t)
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	coster := &costmodel.Coster{Res: res, Cat: an.Cat, MemWeight: 1, CPUWeight: 1}
	u, err := NewUniverseOpts(res, coster, UniverseOptions{Approx: policy})
	if err != nil {
		t.Fatalf("NewUniverseOpts: %v", err)
	}
	return u
}

func TestApproxUniverseAddsVariants(t *testing.T) {
	exact := buildApproxUniverse(t, ApproxPolicy{})
	approx := buildApproxUniverse(t, ApproxPolicy{Enable: true})
	if len(approx.Stats) <= len(exact.Stats) {
		t.Fatalf("approx universe has %d stats, exact %d — no variants admitted",
			len(approx.Stats), len(exact.Stats))
	}
	sketches := 0
	for i, s := range approx.Stats {
		if !s.Kind.Approx() {
			continue
		}
		sketches++
		if !approx.Observable[i] {
			t.Fatalf("sketch variant %v not observable", s.Key())
		}
		ex, ok := stats.ExactVariant(s)
		if !ok {
			t.Fatalf("variant %v has no exact sibling", s.Key())
		}
		j, found := approx.Index[ex.Key()]
		if !found {
			t.Fatalf("exact sibling of %v missing from universe", s.Key())
		}
		// Observing only the sketch must make the exact statistic
		// computable via the A1/A2 candidate set.
		observed := make([]bool, len(approx.Stats))
		observed[i] = true
		if !approx.Closure(observed)[j] {
			t.Fatalf("observing %v does not cover %v", s.Key(), ex.Key())
		}
		// Kind-aware pricing: the sketch must be strictly cheaper than the
		// exact sibling under a CPU-weighted objective.
		if approx.Cost[i] >= approx.Cost[j] {
			t.Fatalf("sketch %v costs %.1f, exact sibling %.1f", s.Key(), approx.Cost[i], approx.Cost[j])
		}
	}
	if sketches == 0 {
		t.Fatal("no sketch variants in the approx universe")
	}
}

// TestApproxAccuracyFloor: a floor above every sketch guarantee excludes
// all variants, collapsing the universe back to the exact tier.
func TestApproxAccuracyFloor(t *testing.T) {
	exact := buildApproxUniverse(t, ApproxPolicy{})
	floored := buildApproxUniverse(t, ApproxPolicy{Enable: true, MinAccuracy: 0.999})
	if len(floored.Stats) != len(exact.Stats) {
		t.Fatalf("accuracy floor 0.999 still admitted %d variants",
			len(floored.Stats)-len(exact.Stats))
	}
	loose := buildApproxUniverse(t, ApproxPolicy{Enable: true, MinAccuracy: 0.9})
	if len(loose.Stats) <= len(exact.Stats) {
		t.Fatal("accuracy floor 0.9 excluded the default sketches")
	}
	a := ApproxAccuracy(stats.Stat{Kind: stats.HLLDistinct})
	if a <= 0.9 || a >= 1 {
		t.Fatalf("hll accuracy %v outside (0.9, 1)", a)
	}
	if ApproxAccuracy(stats.Stat{Kind: stats.Card}) != 1 {
		t.Fatal("exact kinds must report accuracy 1")
	}
}

// TestApproxSelectionPrefersSketches: every solver, given the cheaper
// sketch alternatives, covers S_C at no more cost than the exact-only
// selection, and the greedy/exact ones actually pick sketches.
func TestApproxSelectionPrefersSketches(t *testing.T) {
	exactU := buildApproxUniverse(t, ApproxPolicy{})
	approxU := buildApproxUniverse(t, ApproxPolicy{Enable: true})
	for _, m := range []Method{MethodGreedy, MethodExact, MethodLP} {
		exSel, err := SelectUniverse(exactU, Options{Method: m})
		if err != nil {
			t.Fatalf("method %v exact universe: %v", m, err)
		}
		apSel, err := SelectUniverse(approxU, Options{Method: m})
		if err != nil {
			t.Fatalf("method %v approx universe: %v", m, err)
		}
		if apSel.Cost > exSel.Cost {
			t.Errorf("method %v: approx selection costs %.1f, exact-only %.1f",
				m, apSel.Cost, exSel.Cost)
		}
		observed := make([]bool, len(approxU.Stats))
		for _, s := range apSel.Observe {
			observed[approxU.Index[s.Key()]] = true
		}
		if !approxU.Covered(observed) {
			t.Fatalf("method %v: approx selection does not cover S_C", m)
		}
	}
}
