package selector

import (
	"fmt"
	"sort"
)

// BudgetPlan schedules statistic observation across multiple executions
// under a per-run memory limit, per Section 6.1: when the optimal
// observation set does not fit in memory, the framework mixes cheap trivial
// CSSs with distribution observations, re-ordering the plan in later runs
// so that statistics unobservable under the initial plan become directly
// observable.
type BudgetPlan struct {
	// Runs lists, per execution, the indexes (into Universe.Stats) of the
	// statistics observed during that execution.
	Runs [][]int
	// Memory lists the per-run memory use in integer units.
	Memory []int64
	// TotalCost is the summed observation cost across runs.
	TotalCost float64
}

// NumRuns returns the number of executions the plan needs.
func (p *BudgetPlan) NumRuns() int { return len(p.Runs) }

// PlanWithBudget produces a multi-run observation schedule under a per-run
// memory budget (in integer units). The first run may only observe
// statistics observable under the initial plan; later runs are assumed
// re-ordered so any statistic becomes observable (the trivial-CSS
// exploitation of Section 6.1 and of the pay-as-you-go baseline).
// Statistics gathered in earlier runs are free thereafter. An error is
// returned when even a single statistic exceeds the budget and no cheaper
// covering alternative exists.
func PlanWithBudget(u *Universe, budget int64) (*BudgetPlan, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("selector: budget must be positive, got %d", budget)
	}
	plan := &BudgetPlan{}
	// learned marks statistics whose values are already known from
	// previous runs (free for closure purposes).
	learned := make([]bool, len(u.Stats))
	firstRun := true
	for run := 0; run < 1000; run++ {
		if u.Covered(learned) {
			return plan, nil
		}
		picked, mem, err := planOneRun(u, learned, budget, firstRun)
		if err != nil {
			return nil, err
		}
		plan.Runs = append(plan.Runs, picked)
		plan.Memory = append(plan.Memory, mem)
		for _, i := range picked {
			learned[i] = true
			plan.TotalCost += u.Cost[i]
		}
		firstRun = false
	}
	return nil, fmt.Errorf("selector: budget planning did not converge within 1000 runs")
}

// planOneRun greedily fills one execution's budget with the most useful
// observations. observableNow widens after the first run because the plan
// can be re-ordered to expose any sub-expression.
func planOneRun(u *Universe, learned []bool, budget int64, firstRun bool) ([]int, int64, error) {
	obs := make([]bool, len(u.Stats))
	for i := range obs {
		// After the first run the plan can be re-ordered to expose any
		// statistic's target directly.
		obs[i] = !firstRun || u.Observable[i]
	}
	var picked []int
	var used int64
	cur := append([]bool(nil), learned...)
	for {
		if u.Covered(cur) {
			return picked, used, nil
		}
		closed := u.Closure(cur)
		// Cheapest derivation of any uncovered requirement, restricted to
		// statistics that fit the remaining budget.
		banned := make([]bool, len(u.Stats))
		for i := range u.Stats {
			if u.Mem[i] > budget-used {
				banned[i] = true
			}
		}
		bestCost := -1.0
		var bestLeaves []int
		for _, r := range u.Required {
			if closed[r] {
				continue
			}
			leaves, cost, ok := u.cheapestDerivation(r, obs, closed, banned)
			if !ok {
				continue
			}
			var memNeed int64
			for _, i := range leaves {
				memNeed += u.Mem[i]
			}
			if memNeed > budget-used {
				continue
			}
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				bestLeaves = leaves
			}
		}
		if bestCost < 0 {
			// Nothing else fits this run. If the run is empty the budget
			// cannot cover even one requirement's cheapest derivation.
			if len(picked) == 0 {
				return nil, 0, fmt.Errorf("selector: memory budget %d cannot cover any remaining requirement", budget)
			}
			return picked, used, nil
		}
		if len(bestLeaves) == 0 {
			return nil, 0, fmt.Errorf("selector: budget planning made no progress")
		}
		sort.Ints(bestLeaves)
		for _, i := range bestLeaves {
			cur[i] = true
			picked = append(picked, i)
			used += u.Mem[i]
		}
	}
}
