package selector

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/ilp"
	"github.com/essential-stats/etlopt/internal/lp"
)

// LPOptions tune the LP-formulation solver.
type LPOptions struct {
	// MaxVars rejects models larger than this many variables (0 = 4000);
	// callers fall back to the combinatorial solver.
	MaxVars int
	// MaxNodes caps branch-and-bound nodes (0 = 20000).
	MaxNodes int
}

// SolveLP builds and solves the paper's 0–1 integer program of Section 5.2:
// variables x (observe), y (computable) and z (CSS covered), with
//
//	∀ CSS_ij:              Σ_{k∈CSS_ij} y_k ≥ z_ij·|CSS_ij|
//	∀ i with only trivial:  y_i = x_i
//	∀ other observable i:   y_i ≥ x_i
//	∀ i:                    y_i ≤ x_i + Σ_j z_ij    (x_i absent if unobservable)
//	∀ i,j:                  y_i ≥ z_ij
//	∀ i ∈ S_C:              y_i ≥ 1
//	min Σ c_i·x_i
//
// Because the covering constraints admit circularly-supported integral
// solutions (a CSS cycle "proving" itself), each integral candidate is
// verified against the true closure; spurious candidates are cut off with
// reachability cuts (at least one further relevant observable must be
// chosen) and the search continues. The returned selection is provably
// optimal.
func SolveLP(u *Universe, opt LPOptions) (*Selection, error) {
	maxVars := opt.MaxVars
	if maxVars <= 0 {
		maxVars = 4000
	}
	n := len(u.Stats)
	// Variable layout: x for observable stats, then y for all stats, then
	// z for all CSSs.
	xIdx := make([]int, n) // -1 when unobservable
	next := 0
	for i := 0; i < n; i++ {
		if u.Observable[i] {
			xIdx[i] = next
			next++
		} else {
			xIdx[i] = -1
		}
	}
	yIdx := make([]int, n)
	for i := 0; i < n; i++ {
		yIdx[i] = next
		next++
	}
	zIdx := make([][]int, n)
	for i := 0; i < n; i++ {
		zIdx[i] = make([]int, len(u.CSS[i]))
		for ci := range u.CSS[i] {
			zIdx[i][ci] = next
			next++
		}
	}
	if next > maxVars {
		return nil, fmt.Errorf("selector: LP model has %d variables, above the limit %d", next, maxVars)
	}

	p := &lp.Problem{NumVars: next, C: make([]float64, next)}
	var binaries []int
	for i := 0; i < n; i++ {
		if xIdx[i] >= 0 {
			p.C[xIdx[i]] = u.Cost[i]
			binaries = append(binaries, xIdx[i])
		}
	}
	for i := 0; i < n; i++ {
		// Covering constraints per CSS.
		for ci, c := range u.CSS[i] {
			coef := map[int]float64{zIdx[i][ci]: -float64(len(c.inputs))}
			for _, j := range c.inputs {
				coef[yIdx[j]] += 1
			}
			p.AddRow(lp.GE, 0, coef) // Σ y_k − |CSS|·z ≥ 0
			// y_i ≥ z_ij.
			p.AddRow(lp.GE, 0, map[int]float64{yIdx[i]: 1, zIdx[i][ci]: -1})
		}
		switch {
		case len(u.CSS[i]) == 0 && xIdx[i] >= 0:
			// Only the trivial CSS: computable iff observed.
			p.AddRow(lp.EQ, 0, map[int]float64{yIdx[i]: 1, xIdx[i]: -1})
		case len(u.CSS[i]) == 0:
			// Neither observable nor derivable: y_i = 0.
			p.AddRow(lp.EQ, 0, map[int]float64{yIdx[i]: 1})
		default:
			// y_i ≤ x_i + Σ_j z_ij  and  y_i ≥ x_i.
			coef := map[int]float64{yIdx[i]: 1}
			if xIdx[i] >= 0 {
				coef[xIdx[i]] = -1
				p.AddRow(lp.GE, 0, map[int]float64{yIdx[i]: 1, xIdx[i]: -1})
			}
			for ci := range u.CSS[i] {
				coef[zIdx[i][ci]] = -1
			}
			p.AddRow(lp.LE, 0, coef)
		}
	}
	for _, r := range u.Required {
		p.AddRow(lp.GE, 1, map[int]float64{yIdx[r]: 1})
	}

	// Incumbent from greedy.
	g, err := Greedy(u)
	if err != nil {
		return nil, err
	}

	verify := func(x []float64) (bool, []lp.Row) {
		observed := make([]bool, n)
		for i := 0; i < n; i++ {
			if xIdx[i] >= 0 && x[xIdx[i]] > 0.5 {
				observed[i] = true
			}
		}
		closed := u.Closure(observed)
		for _, r := range u.Required {
			if closed[r] {
				continue
			}
			// Spurious (circular) support: cut it off. Any genuine
			// solution must observe at least one relevant observable
			// statistic beyond the current choice.
			relevant := u.reachableObservables(r)
			coef := map[int]float64{}
			for _, i := range relevant {
				if !observed[i] {
					coef[xIdx[i]] = 1
				}
			}
			if len(coef) == 0 {
				return false, nil // genuinely infeasible branch
			}
			return false, []lp.Row{{Coef: coef, Op: lp.GE, RHS: 1, Name: "reach-cut"}}
		}
		return true, nil
	}

	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		// Every node re-solves the dense relaxation from scratch; cap the
		// default so pathological instances degrade to the greedy
		// incumbent instead of hanging.
		maxNodes = 2000
	}
	res, err := ilp.Solve(&ilp.Model{LP: p, Binary: binaries}, ilp.Options{
		MaxNodes:     maxNodes,
		Incumbent:    g.Cost + 1e-9,
		HasIncumbent: true,
		OnIntegral:   verify,
	})
	if err != nil {
		return nil, err
	}
	switch res.Status {
	case ilp.Infeasible:
		return nil, errNoSolution
	}
	observed := make([]bool, n)
	if res.X == nil {
		// The greedy incumbent was already optimal.
		for _, s := range g.Observe {
			observed[u.Index[s.Key()]] = true
		}
	} else {
		for i := 0; i < n; i++ {
			if xIdx[i] >= 0 && res.X[xIdx[i]] > 0.5 {
				observed[i] = true
			}
		}
	}
	return &Selection{
		Observe: u.StatsOf(observed),
		Cost:    u.ObservedCost(observed),
		Memory:  u.ObservedMemory(observed),
		Optimal: res.Status == ilp.Optimal,
		Method:  "lp",
		Nodes:   res.Nodes,
	}, nil
}

// reachableObservables returns the observable statistics in the derivation
// cone of statistic r (r itself included when observable).
func (u *Universe) reachableObservables(r int) []int {
	seen := make([]bool, len(u.Stats))
	var out []int
	var walk func(i int)
	walk = func(i int) {
		if seen[i] {
			return
		}
		seen[i] = true
		if u.Observable[i] {
			out = append(out, i)
		}
		for _, c := range u.CSS[i] {
			for _, j := range c.inputs {
				walk(j)
			}
		}
	}
	walk(r)
	return out
}
