package selector

import (
	"container/heap"
	"math"
)

// deriveMode selects how the cost of an AND-node (a CSS needing all its
// inputs) is aggregated from its inputs.
type deriveMode int

const (
	// deriveSum prices a CSS at the sum of its input derivation costs. It
	// over-counts statistics shared between branches, so it is an upper
	// bound on the cheapest derivation — suitable for the greedy heuristic.
	deriveSum deriveMode = iota
	// deriveMax prices a CSS at the maximum input derivation cost. Because
	// any real derivation pays at least its most expensive leaf, this is a
	// valid lower bound — suitable for branch-and-bound pruning.
	deriveMax
)

// deriveCosts computes, for every statistic, the cheapest derivation cost
// under the given leaf pricing: free[i] statistics cost 0 (already
// observed/computable), banned[i] statistics cannot be observed, all other
// observable statistics cost u.Cost[i], and unobservable statistics can
// only be reached through a CSS. The computation is Knuth's generalization
// of Dijkstra's algorithm to monotone AND/OR graphs, which handles the
// cyclic derivations produced by union–division correctly.
// obs overrides the observability mask when non-nil (the Section 6.1
// budget planner widens observability for re-ordered later runs).
func (u *Universe) deriveCosts(obs, free, banned []bool, mode deriveMode) []float64 {
	if obs == nil {
		obs = u.Observable
	}
	n := len(u.Stats)
	dist := make([]float64, n)
	done := make([]bool, n)
	// remaining[i][ci]: inputs of CSS ci of stat i not yet finalized;
	// acc[i][ci]: aggregated cost of finalized inputs.
	remaining := make([][]int, n)
	acc := make([][]float64, n)
	pq := &floatHeap{}
	for i := 0; i < n; i++ {
		remaining[i] = make([]int, len(u.CSS[i]))
		acc[i] = make([]float64, len(u.CSS[i]))
		for ci, c := range u.CSS[i] {
			remaining[i][ci] = len(c.inputs)
		}
		switch {
		case free != nil && free[i]:
			dist[i] = 0
		case obs[i] && (banned == nil || !banned[i]):
			dist[i] = u.Cost[i]
		default:
			dist[i] = math.Inf(1)
		}
		if !math.IsInf(dist[i], 1) {
			heap.Push(pq, heapItem{idx: i, cost: dist[i]})
		}
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		i := it.idx
		if done[i] || it.cost > dist[i] {
			continue
		}
		done[i] = true
		for _, ref := range u.usedBy[i] {
			if done[ref.stat] {
				continue
			}
			switch mode {
			case deriveSum:
				acc[ref.stat][ref.css] += dist[i]
			case deriveMax:
				if dist[i] > acc[ref.stat][ref.css] {
					acc[ref.stat][ref.css] = dist[i]
				}
			}
			remaining[ref.stat][ref.css]--
			if remaining[ref.stat][ref.css] == 0 && acc[ref.stat][ref.css] < dist[ref.stat] {
				dist[ref.stat] = acc[ref.stat][ref.css]
				heap.Push(pq, heapItem{idx: ref.stat, cost: dist[ref.stat]})
			}
		}
	}
	return dist
}

// cheapestDerivation returns, for statistic target, a concrete derivation
// under deriveSum pricing: the set of not-yet-free observable statistics it
// observes. It re-runs the cost pass and then walks the winning choices.
// ok is false when the target is underivable under the pricing.
func (u *Universe) cheapestDerivation(target int, obs, free, banned []bool) (leaves []int, cost float64, ok bool) {
	if obs == nil {
		obs = u.Observable
	}
	dist := u.deriveCosts(obs, free, banned, deriveSum)
	return u.walkDerivation(target, dist, obs, free, banned)
}

// walkDerivation extracts the observed-leaf set of the cheapest derivation
// from a precomputed deriveSum cost vector, so callers can share one cost
// pass across many targets.
func (u *Universe) walkDerivation(target int, dist []float64, obs, free, banned []bool) (leaves []int, cost float64, ok bool) {
	if obs == nil {
		obs = u.Observable
	}
	if math.IsInf(dist[target], 1) {
		return nil, 0, false
	}
	seen := make(map[int]bool)
	leafSet := make(map[int]bool)
	var walk func(i int)
	walk = func(i int) {
		if seen[i] {
			return
		}
		seen[i] = true
		if free != nil && free[i] {
			return
		}
		// Prefer direct observation when it is the winning price.
		if obs[i] && (banned == nil || !banned[i]) && u.Cost[i] <= dist[i]+1e-12 {
			leafSet[i] = true
			return
		}
		// Otherwise find a CSS achieving the winning price.
		for _, c := range u.CSS[i] {
			var sum float64
			feasible := true
			for _, j := range c.inputs {
				if math.IsInf(dist[j], 1) {
					feasible = false
					break
				}
				sum += dist[j]
			}
			if feasible && sum <= dist[i]+1e-9 {
				for _, j := range c.inputs {
					walk(j)
				}
				return
			}
		}
		// Fall back to direct observation even at a worse price (can only
		// happen through floating-point ties).
		if obs[i] && (banned == nil || !banned[i]) {
			leafSet[i] = true
		}
	}
	walk(target)
	for i := range u.Stats {
		if leafSet[i] {
			leaves = append(leaves, i)
		}
	}
	return leaves, dist[target], true
}

type heapItem struct {
	idx  int
	cost float64
}

type floatHeap []heapItem

func (h floatHeap) Len() int            { return len(h) }
func (h floatHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h floatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *floatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
