package selector

import (
	"fmt"
	"math"
	"testing"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// buildUniverse analyzes a workflow and produces the selection universe
// with a memory-only coster.
func buildUniverse(t *testing.T, g *workflow.Graph, cat *workflow.Catalog, opt css.Options) *Universe {
	t.Helper()
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, opt)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	u, err := NewUniverse(res, coster)
	if err != nil {
		t.Fatalf("NewUniverse: %v", err)
	}
	return u
}

// retail builds the paper's Orders/Product/Customer flow.
func retail(t *testing.T) (*workflow.Graph, *workflow.Catalog) {
	t.Helper()
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "Orders", Card: 10000, Columns: []workflow.Column{
			{Name: "oid", Domain: 10000}, {Name: "pid", Domain: 500}, {Name: "cid", Domain: 2000},
		}},
		{Name: "Product", Card: 500, Columns: []workflow.Column{
			{Name: "pid", Domain: 500}, {Name: "price", Domain: 1000},
		}},
		{Name: "Customer", Card: 2000, Columns: []workflow.Column{
			{Name: "cid", Domain: 2000}, {Name: "region", Domain: 50},
		}},
	}}
	b := workflow.NewBuilder("retail")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	j2 := b.Join(j1, c, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	b.Sink(j2, "dw")
	return b.Graph(), cat
}

func TestClosureBasic(t *testing.T) {
	g, cat := retail(t)
	u := buildUniverse(t, g, cat, css.Options{})
	// Observing nothing: nothing computable.
	if u.Covered(make([]bool, len(u.Stats))) {
		t.Fatal("empty observation should not cover S_C")
	}
	// Observing everything observable must cover (checked in NewUniverse,
	// re-checked here).
	all := append([]bool(nil), u.Observable...)
	if !u.Covered(all) {
		t.Fatal("full observation should cover S_C")
	}
}

func TestGreedyCovers(t *testing.T) {
	g, cat := retail(t)
	u := buildUniverse(t, g, cat, css.DefaultOptions())
	sel, err := Greedy(u)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	observed := make([]bool, len(u.Stats))
	for _, s := range sel.Observe {
		observed[u.Index[s.Key()]] = true
	}
	if !u.Covered(observed) {
		t.Fatal("greedy selection does not cover S_C")
	}
	if sel.Cost <= 0 {
		t.Fatalf("greedy cost = %v, want positive", sel.Cost)
	}
}

// TestGreedyDeterministic guards the tie-break: selecting twice over
// independently built universes must pick the same statistics in the same
// order, even when several derivations cost the same.
func TestGreedyDeterministic(t *testing.T) {
	for _, opt := range []css.Options{{}, css.DefaultOptions()} {
		g, cat := retail(t)
		var prev []string
		for trial := 0; trial < 2; trial++ {
			u := buildUniverse(t, g, cat, opt)
			sel, err := Greedy(u)
			if err != nil {
				t.Fatalf("Greedy: %v", err)
			}
			keys := make([]string, len(sel.Observe))
			for i, s := range sel.Observe {
				keys[i] = fmt.Sprintf("%v", s.Key())
			}
			if trial == 0 {
				prev = keys
				continue
			}
			if len(keys) != len(prev) {
				t.Fatalf("greedy picked %d stats, then %d", len(prev), len(keys))
			}
			for i := range keys {
				if keys[i] != prev[i] {
					t.Fatalf("greedy pick %d differs between runs: %s vs %s", i, prev[i], keys[i])
				}
			}
		}
	}
}

func TestExactNoWorseThanGreedy(t *testing.T) {
	for _, opt := range []css.Options{{}, css.DefaultOptions()} {
		g, cat := retail(t)
		u := buildUniverse(t, g, cat, opt)
		gr, err := Greedy(u)
		if err != nil {
			t.Fatalf("Greedy: %v", err)
		}
		ex, err := Exact(u, ExactOptions{})
		if err != nil {
			t.Fatalf("Exact: %v", err)
		}
		if !ex.Optimal {
			t.Fatal("Exact did not prove optimality on a small instance")
		}
		if ex.Cost > gr.Cost+1e-6 {
			t.Fatalf("exact cost %v worse than greedy %v", ex.Cost, gr.Cost)
		}
		observed := make([]bool, len(u.Stats))
		for _, s := range ex.Observe {
			observed[u.Index[s.Key()]] = true
		}
		if !u.Covered(observed) {
			t.Fatal("exact selection does not cover S_C")
		}
	}
}

func TestLPMatchesExact(t *testing.T) {
	g, cat := retail(t)
	u := buildUniverse(t, g, cat, css.Options{})
	ex, err := Exact(u, ExactOptions{})
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	lpSel, err := SolveLP(u, LPOptions{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if !lpSel.Optimal {
		t.Fatal("LP did not prove optimality")
	}
	if math.Abs(lpSel.Cost-ex.Cost) > 1e-6 {
		t.Fatalf("LP cost %v != exact cost %v", lpSel.Cost, ex.Cost)
	}
	observed := make([]bool, len(u.Stats))
	for _, s := range lpSel.Observe {
		observed[u.Index[s.Key()]] = true
	}
	if !u.Covered(observed) {
		t.Fatal("LP selection does not cover S_C")
	}
}

// TestAmortizationSharedAttribute reproduces the Figure 7 insight: when T1
// joins T2 and T3 on the same attribute, the optimal solution shares
// H^a_{T1} across both join estimates instead of paying for it twice.
func TestAmortizationSharedAttribute(t *testing.T) {
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "T1", Card: 1000, Columns: []workflow.Column{{Name: "a", Domain: 9}}},
		{Name: "T2", Card: 1000, Columns: []workflow.Column{{Name: "a", Domain: 9}}},
		{Name: "T3", Card: 1000, Columns: []workflow.Column{{Name: "a", Domain: 9}}},
	}}
	b := workflow.NewBuilder("shared")
	t1 := b.Source("T1")
	t2 := b.Source("T2")
	t3 := b.Source("T3")
	j1 := b.Join(t1, t2, workflow.Attr{Rel: "T1", Col: "a"}, workflow.Attr{Rel: "T2", Col: "a"})
	j2 := b.Join(j1, t3, workflow.Attr{Rel: "T1", Col: "a"}, workflow.Attr{Rel: "T3", Col: "a"})
	b.Sink(j2, "dw")
	u := buildUniverse(t, b.Graph(), cat, css.Options{})
	sel, err := Exact(u, ExactOptions{})
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	// The shared-attribute solution: H^a on each of T1, T2, T3 (9 units
	// each = 27) covers everything: all SE cardinalities follow via J1/J3
	// composition. Anything above 3 histograms plus a few counters means
	// sharing failed.
	if sel.Cost > 27+6+1e-6 {
		t.Fatalf("exact cost %v; sharing of H^a_T1 apparently not exploited", sel.Cost)
	}
	histsSeen := map[string]int{}
	for _, s := range sel.Observe {
		if s.Kind == stats.Hist {
			histsSeen[s.Label(nil)]++
		}
	}
	if len(histsSeen) > 3 {
		t.Fatalf("observed %d distinct histograms, want at most 3: %v", len(histsSeen), histsSeen)
	}
}

func TestUnionDivisionCanReduceMemory(t *testing.T) {
	// A flow where the middle relation has a huge second join attribute
	// domain: without union–division, covering |T1⋈T2| requires a joint
	// histogram on T1 (pid,cid) — expensive. With union–division the
	// framework can use the observable T1⋈T3⋈T2 route plus small reject
	// statistics.
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "T1", Card: 100000, Columns: []workflow.Column{
			{Name: "j13", Domain: 50}, {Name: "j12", Domain: 40000},
		}},
		{Name: "T2", Card: 50000, Columns: []workflow.Column{{Name: "j12", Domain: 40000}}},
		{Name: "T3", Card: 50, Columns: []workflow.Column{{Name: "j13", Domain: 50}}},
	}}
	b := workflow.NewBuilder("ud")
	t1 := b.Source("T1")
	t2 := b.Source("T2")
	t3 := b.Source("T3")
	j1 := b.Join(t1, t3, workflow.Attr{Rel: "T1", Col: "j13"}, workflow.Attr{Rel: "T3", Col: "j13"})
	j2 := b.Join(j1, t2, workflow.Attr{Rel: "T1", Col: "j12"}, workflow.Attr{Rel: "T2", Col: "j12"})
	b.Sink(j2, "dw")
	uPlain := buildUniverse(t, b.Graph(), cat, css.Options{})
	uUD := buildUniverse(t, b.Graph(), cat, css.Options{UnionDivision: true})
	selPlain, err := Exact(uPlain, ExactOptions{})
	if err != nil {
		t.Fatalf("Exact(plain): %v", err)
	}
	selUD, err := Exact(uUD, ExactOptions{})
	if err != nil {
		t.Fatalf("Exact(ud): %v", err)
	}
	if selUD.Cost > selPlain.Cost+1e-6 {
		t.Fatalf("union–division made things worse: %v vs %v", selUD.Cost, selPlain.Cost)
	}
}

func TestFreeSourceStatsPreferred(t *testing.T) {
	g, cat := retail(t)
	cat.Relation("Product").HasSourceStats = true
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	coster.FreeSourceStats = true
	u, err := NewUniverse(res, coster)
	if err != nil {
		t.Fatalf("NewUniverse: %v", err)
	}
	sel, err := Exact(u, ExactOptions{})
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	// All Product statistics are free, so the exact cost must be at most
	// the non-free optimum, and strictly cheaper than pricing Product's
	// pid histogram (500 units).
	coster2 := costmodel.NewMemoryCoster(res, an.Cat)
	u2, err := NewUniverse(res, coster2)
	if err != nil {
		t.Fatalf("NewUniverse: %v", err)
	}
	sel2, err := Exact(u2, ExactOptions{})
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if sel.Cost >= sel2.Cost {
		t.Fatalf("free source stats did not reduce cost: %v vs %v", sel.Cost, sel2.Cost)
	}
}

func TestPlanWithBudget(t *testing.T) {
	g, cat := retail(t)
	u := buildUniverse(t, g, cat, css.DefaultOptions())
	// A generous budget: single run.
	one, err := PlanWithBudget(u, 1<<40)
	if err != nil {
		t.Fatalf("PlanWithBudget(large): %v", err)
	}
	if one.NumRuns() != 1 {
		t.Fatalf("large budget needs %d runs, want 1", one.NumRuns())
	}
	// A tight budget forces multiple runs; every run must respect it.
	tight, err := PlanWithBudget(u, 600)
	if err != nil {
		t.Fatalf("PlanWithBudget(tight): %v", err)
	}
	if tight.NumRuns() < 2 {
		t.Fatalf("tight budget produced %d runs, want >= 2", tight.NumRuns())
	}
	for r, mem := range tight.Memory {
		if mem > 600 {
			t.Errorf("run %d uses %d units, above budget 600", r, mem)
		}
	}
	// The learned union across runs must cover S_C.
	learned := make([]bool, len(u.Stats))
	for _, run := range tight.Runs {
		for _, i := range run {
			learned[i] = true
		}
	}
	if !u.Covered(learned) {
		t.Fatal("multi-run plan does not cover S_C")
	}
	if _, err := PlanWithBudget(u, 0); err == nil {
		t.Fatal("zero budget: want error")
	}
}

func TestSelectDispatch(t *testing.T) {
	g, cat := retail(t)
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	for _, m := range []Method{MethodAuto, MethodExact, MethodGreedy, MethodLP} {
		sel, err := Select(res, coster, Options{Method: m})
		if err != nil {
			t.Fatalf("Select(%v): %v", m, err)
		}
		if len(sel.Observe) == 0 {
			t.Fatalf("Select(%v): empty selection", m)
		}
	}
}

func TestSelectionDeterministic(t *testing.T) {
	g, cat := retail(t)
	u := buildUniverse(t, g, cat, css.DefaultOptions())
	a, err := Exact(u, ExactOptions{})
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	b, err := Exact(u, ExactOptions{})
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if a.Cost != b.Cost || len(a.Observe) != len(b.Observe) {
		t.Fatalf("nondeterministic exact: %v/%d vs %v/%d", a.Cost, len(a.Observe), b.Cost, len(b.Observe))
	}
	for i := range a.Observe {
		if a.Observe[i].Key() != b.Observe[i].Key() {
			t.Fatalf("selection order differs at %d", i)
		}
	}
}
