package selector

import (
	"errors"
	"time"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/stats"
)

// errNoSolution reports that no observation set covers the required
// statistics (cannot happen after NewUniverse's derivability check, but the
// solvers guard against it anyway).
var errNoSolution = errors.New("selector: no feasible observation set")

// Selection is a chosen set of statistics to observe.
type Selection struct {
	// Observe lists the statistics to instrument, in deterministic order.
	Observe []stats.Stat
	// Cost is the total observation cost under the coster's objective.
	Cost float64
	// Memory is the total memory in abstract integer units (Figure 11).
	Memory int64
	// Optimal reports whether the solver proved minimality.
	Optimal bool
	// Method names the solver that produced the selection.
	Method string
	// Nodes counts search nodes, when applicable.
	Nodes int
}

// Method selects the solver.
type Method int

// Available solvers.
const (
	// MethodAuto runs the combinatorial exact solver and falls back to its
	// best incumbent when budgets expire.
	MethodAuto Method = iota
	// MethodExact forces the combinatorial branch and bound.
	MethodExact
	// MethodGreedy forces the Section 5.3 heuristic.
	MethodGreedy
	// MethodLP forces the Section 5.2 integer-program formulation.
	MethodLP
)

// Options configure Select.
type Options struct {
	Method Method
	// MaxNodes caps search nodes for the exact and LP methods.
	MaxNodes int
	// Timeout caps the exact solver's wall-clock time.
	Timeout time.Duration
}

// Select determines a minimum-cost set of statistics to observe for the
// generated CSS result, per Section 5 of the paper.
func Select(res *css.Result, coster *costmodel.Coster, opt Options) (*Selection, error) {
	u, err := NewUniverse(res, coster)
	if err != nil {
		return nil, err
	}
	return SelectUniverse(u, opt)
}

// SelectUniverse is Select over a pre-built universe, so callers can reuse
// the indexing across solver comparisons.
func SelectUniverse(u *Universe, opt Options) (*Selection, error) {
	switch opt.Method {
	case MethodGreedy:
		return Greedy(u)
	case MethodLP:
		return SolveLP(u, LPOptions{MaxNodes: opt.MaxNodes})
	default:
		maxNodes := opt.MaxNodes
		if maxNodes <= 0 {
			// Each branch-and-bound node costs a couple of passes over the
			// CSS graph; scale the default budget inversely with graph
			// size so worst-case solve time stays bounded while small
			// universes still get exhaustive search.
			edges := 1
			for i := range u.CSS {
				for _, c := range u.CSS[i] {
					edges += len(c.inputs)
				}
			}
			maxNodes = 40_000_000 / edges
			if maxNodes < 1000 {
				maxNodes = 1000
			}
			if maxNodes > 200000 {
				maxNodes = 200000
			}
		}
		return Exact(u, ExactOptions{MaxNodes: maxNodes, Timeout: opt.Timeout})
	}
}
