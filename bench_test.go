// Benchmarks regenerating the paper's evaluation artifacts (one benchmark
// per table/figure, plus the ablations DESIGN.md calls out and
// micro-benchmarks of the load-bearing primitives).
//
//	go test -bench=. -benchmem
package etlopt_test

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/experiments"
	"github.com/essential-stats/etlopt/internal/payg"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/serve"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/suite"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// figureWorkflows is the representative slice of the suite used by the
// per-iteration figure benchmarks (the full 30-workflow sweep lives in
// cmd/experiments; benchmarks need per-iteration times).
var figureWorkflows = []int{3, 9, 16, 21, 23, 30}

// BenchmarkTableDataCharacteristics regenerates the Section 7 data table
// (cardinalities and unique values of the suite's Zipfian relations).
func BenchmarkTableDataCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ch := experiments.DataCharacteristics(0.05)
		if ch.CardMax == 0 {
			b.Fatal("empty characteristics")
		}
	}
}

// BenchmarkFigure9CSSGeneration measures sub-expression and CSS generation
// (both rule sets) across representative workflows — the quantities plotted
// in Figure 9.
func BenchmarkFigure9CSSGeneration(b *testing.B) {
	ans := analyzed(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, an := range ans {
			if _, err := css.Generate(an, css.Options{CrossBlock: true, FKShortcut: true}); err != nil {
				b.Fatal(err)
			}
			if _, err := css.Generate(an, css.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure10StatisticsIdentification measures the full statistics
// identification pipeline (CSS generation + optimal selection), the Figure
// 10 quantity.
func BenchmarkFigure10StatisticsIdentification(b *testing.B) {
	ans := analyzed(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, an := range ans {
			res, err := css.Generate(an, css.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			coster := costmodel.NewMemoryCoster(res, an.Cat)
			if _, err := selector.Select(res, coster, selector.Options{Method: selector.MethodExact, MaxNodes: 4000}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure11MemoryOverhead measures optimal-selection memory with
// and without union–division (the Figure 11 sweep) and reports the wf03
// ratio as a sanity anchor.
func BenchmarkFigure11MemoryOverhead(b *testing.B) {
	an3, err := suite.MustGet(3).Analyze()
	if err != nil {
		b.Fatal(err)
	}
	var plainMem, udMem int64
	for i := 0; i < b.N; i++ {
		plain, err := css.Generate(an3, css.Options{})
		if err != nil {
			b.Fatal(err)
		}
		selP, err := selector.Select(plain, costmodel.NewMemoryCoster(plain, an3.Cat), selector.Options{Method: selector.MethodExact})
		if err != nil {
			b.Fatal(err)
		}
		ud, err := css.Generate(an3, css.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		selU, err := selector.Select(ud, costmodel.NewMemoryCoster(ud, an3.Cat), selector.Options{Method: selector.MethodExact})
		if err != nil {
			b.Fatal(err)
		}
		plainMem, udMem = selP.Memory, selU.Memory
	}
	b.ReportMetric(float64(plainMem), "mem-units")
	b.ReportMetric(float64(udMem), "mem+UD-units")
}

// BenchmarkFigure12Executions measures the trivial-CSS baseline's plan
// cover (the Figure 12 quantity) on the widest suite workflows.
func BenchmarkFigure12Executions(b *testing.B) {
	var ress []*css.Result
	for _, id := range []int{21, 26, 30} {
		an, err := suite.MustGet(id).Analyze()
		if err != nil {
			b.Fatal(err)
		}
		res, err := css.Generate(an, css.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		ress = append(ress, res)
	}
	b.ResetTimer()
	found := 0
	for i := 0; i < b.N; i++ {
		for _, res := range ress {
			rep := payg.Evaluate(res)
			found = rep.Found
		}
	}
	b.ReportMetric(float64(found), "wf30-executions")
}

// BenchmarkE2ECycle measures one full optimization cycle (Figure 2): choose
// statistics, run instrumented, optimize — the end-to-end cost a deployment
// pays per re-optimization.
func BenchmarkE2ECycle(b *testing.B) {
	w := suite.MustGet(5)
	db := w.Data(0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cy, err := core.Run(w.Graph, w.Catalog, db, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if cy.Plans.TotalCost > cy.Plans.TotalInitialCost {
			b.Fatal("optimizer regressed")
		}
	}
}

// BenchmarkE2ECycleApprox is BenchmarkE2ECycle on the sketch-backed tier:
// the same workflow with every admissible exact statistic demoted to its
// HyperLogLog or count-min sibling, pinning the approximate tier's
// end-to-end overhead next to the exact baseline.
func BenchmarkE2ECycleApprox(b *testing.B) {
	w := suite.MustGet(5)
	db := w.Data(0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.StatsTier = core.TierApprox
		cy, err := core.Run(w.Graph, w.Catalog, db, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if cy.Plans.TotalCost > cy.Plans.TotalInitialCost {
			b.Fatal("optimizer regressed")
		}
	}
}

// BenchmarkHLLAdd measures the per-tuple cost of a HyperLogLog update, the
// hot path of every sketch-backed distinct-count tap.
func BenchmarkHLLAdd(b *testing.B) {
	h := stats.NewHLL(stats.DefaultHLLP)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(int64(i))
	}
	if h.Estimate() == 0 {
		b.Fatal("empty sketch")
	}
}

// BenchmarkHLLMerge measures the register-max merge that combines
// per-worker HLL shards after a parallel run.
func BenchmarkHLLMerge(b *testing.B) {
	l := stats.NewHLL(stats.DefaultHLLP)
	r := stats.NewHLL(stats.DefaultHLLP)
	for i := int64(0); i < 4096; i++ {
		l.Add(i)
		r.Add(i + 2048)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Clone().Merge(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCMHistObserve measures the per-tuple cost of a count-min
// histogram update (hash + one counter write per depth row).
func BenchmarkCMHistObserve(b *testing.B) {
	cm := stats.NewCMH(stats.CMSpecFor(0, 9999), stats.DefaultCMDepth, stats.DefaultCMWidth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Observe(int64(i % 10000))
	}
	if cm.Total() == 0 {
		b.Fatal("empty sketch")
	}
}

// BenchmarkAblationGreedyVsExact compares the two selection solvers on one
// mid-size workflow (the DESIGN.md solver ablation).
func BenchmarkAblationGreedyVsExact(b *testing.B) {
	an, err := suite.MustGet(17).Analyze()
	if err != nil {
		b.Fatal(err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	u, err := selector.NewUniverse(res, coster)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := selector.Greedy(u); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := selector.Exact(u, selector.ExactOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationUnionDivision isolates the generation-time overhead the
// union–division rules add (the Figure 10 "does UD cost anything" check).
func BenchmarkAblationUnionDivision(b *testing.B) {
	an, err := suite.MustGet(9).Analyze()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := css.Generate(an, css.Options{CrossBlock: true, FKShortcut: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("union-division", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := css.Generate(an, css.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHistogramJoin measures the J2 evaluation primitive: joining a
// joint distribution against a join-column distribution.
func BenchmarkHistogramJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	aA := workflow.Attr{Rel: "T1", Col: "a"}
	aB := workflow.Attr{Rel: "T1", Col: "b"}
	h1 := stats.NewHistogram(aA, aB)
	h2 := stats.NewHistogram(aA)
	for i := 0; i < 20000; i++ {
		h1.Add(int64(rng.Intn(500)), int64(rng.Intn(50)))
		h2.Add(int64(rng.Intn(500)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Join(h1, h2, aA, []workflow.Attr{aB}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogramDotProduct measures the J1 primitive.
func BenchmarkHistogramDotProduct(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	aA := workflow.Attr{Rel: "T1", Col: "a"}
	h1 := stats.NewHistogram(aA)
	h2 := stats.NewHistogram(aA)
	for i := 0; i < 50000; i++ {
		h1.Add(int64(rng.Intn(5000)))
		h2.Add(int64(rng.Intn(5000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.DotProduct(h1, h2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineInstrumentedRun measures instrumented execution throughput
// (the observation overhead the paper argues is acceptable).
func BenchmarkEngineInstrumentedRun(b *testing.B) {
	w := suite.MustGet(5)
	db := w.Data(0.002)
	an, err := w.Analyze()
	if err != nil {
		b.Fatal(err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	sel, err := selector.Select(res, coster, selector.Options{Method: selector.MethodGreedy})
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(an, db, nil)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunObserved(res, sel.Observe); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMetricsOverhead measures the cost of per-operator metrics
// collection on the instrumented run for both engines. With metrics off
// the hot paths never call the clock, so "off" should be indistinguishable
// from the seed; "on" prices the timing calls and counter updates.
func BenchmarkMetricsOverhead(b *testing.B) {
	w := suite.MustGet(5)
	db := w.Data(0.002)
	an, err := w.Analyze()
	if err != nil {
		b.Fatal(err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	sel, err := selector.Select(res, coster, selector.Options{Method: selector.MethodGreedy})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run("batch/metrics="+mode.name, func(b *testing.B) {
			eng := engine.New(an, db, nil)
			eng.CollectMetrics = mode.on
			for i := 0; i < b.N; i++ {
				if _, err := eng.RunObserved(res, sel.Observe); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("streaming/metrics="+mode.name, func(b *testing.B) {
			eng := engine.NewStream(an, db, nil)
			eng.CollectMetrics = mode.on
			for i := 0; i < b.N; i++ {
				if _, err := eng.RunObserved(res, sel.Observe); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineMode compares batch and pipelined execution of the same
// workflow (the streaming engine materializes only hash-join build sides).
func BenchmarkEngineMode(b *testing.B) {
	w := suite.MustGet(5)
	db := w.Data(0.002)
	an, err := w.Analyze()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("batch", func(b *testing.B) {
		eng := engine.New(an, db, nil)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		eng := engine.NewStream(an, db, nil)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// parallelWorkflows are the multi-block suite entries used by the worker
// sweep, with a per-workflow data scale sized for per-iteration times:
// wf07 and wf18 are block chains (intra-operator partitioning is the
// lever), wf13 has two mutually independent blocks (the inter-block DAG
// scheduler's best case).
var parallelWorkflows = []struct {
	id    int
	scale float64
}{{7, 0.02}, {13, 0.1}, {18, 0.02}}

// BenchmarkEngineWorkers sweeps the worker count over multi-block suite
// workflows on both engines. On multi-core hardware the streaming engine
// at 4 workers should beat workers=1 by >= 1.5x on these workflows; on a
// single-core host the sweep only verifies the parallel paths add no
// meaningful overhead.
func BenchmarkEngineWorkers(b *testing.B) {
	for _, pw := range parallelWorkflows {
		id := pw.id
		w := suite.MustGet(id)
		an, err := w.Analyze()
		if err != nil {
			b.Fatal(err)
		}
		db := w.Data(pw.scale)
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("wf%02d/stream-w%d", id, workers), func(b *testing.B) {
				eng := engine.NewStream(an, db, nil)
				eng.Workers = workers
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("wf%02d/batch-w%d", id, workers), func(b *testing.B) {
				eng := engine.New(an, db, nil)
				eng.Workers = workers
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAdaptiveOverhead prices mid-run adaptive re-optimization on a
// multi-block workflow against the plain optimized run: "check" pays only
// the boundary checks (accurate estimates, nothing trips), "replan" pays a
// forced re-optimization plus the checkpoint splice. The check leg should
// sit within noise of plain; the replan leg bounds the worst case.
func BenchmarkAdaptiveOverhead(b *testing.B) {
	w := suite.MustGet(8)
	db := w.Data(0.002)
	cy, err := core.Run(w.Graph, w.Catalog, db, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cy.RunOptimized(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ar, err := cy.RunOptimizedAdaptive(core.AdaptiveOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if len(ar.Replans) != 0 {
				b.Fatal("accurate estimates replanned")
			}
		}
	})
	b.Run("replan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ar, err := cy.RunOptimizedAdaptive(core.AdaptiveOptions{Skew: map[int]float64{0: 4}})
			if err != nil {
				b.Fatal(err)
			}
			if len(ar.Replans) != 1 {
				b.Fatalf("replans = %d, want 1", len(ar.Replans))
			}
		}
	})
}

// BenchmarkZipfGeneration measures the synthetic data generator.
func BenchmarkZipfGeneration(b *testing.B) {
	spec := data.TableSpec{Rel: "T", Card: 100000, Columns: []data.ColumnSpec{
		{Name: "id", Serial: true},
		{Name: "k", Domain: 5000, Skew: 1.8},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := data.Generate(spec, int64(i))
		if t.Card() != 100000 {
			b.Fatal("bad cardinality")
		}
	}
}

// BenchmarkDistributedDispatch measures the coordinator/worker dispatch
// overhead over local loopback HTTP — wire codec, lease bookkeeping and
// central shard merge — next to BenchmarkE2ECycle's in-process number for
// the same workflow and scale.
func BenchmarkDistributedDispatch(b *testing.B) {
	w := suite.MustGet(5)
	db := w.Data(0.002)
	srv := httptest.NewServer(serve.NewWorker().Handler())
	defer srv.Close()
	coord, err := serve.NewCoordinator(
		serve.RunSpec{WF: 5, Scale: 0.002, CSS: css.DefaultOptions()},
		serve.CoordinatorOptions{Addrs: []string{srv.URL}},
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Dispatcher = coord
		cy, err := core.Run(w.Graph, w.Catalog, db, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if d := cy.Observed.Dist; d == nil || len(d.Remote) == 0 || d.FellBack {
			b.Fatalf("run did not execute remotely: %+v", d)
		}
	}
}

func analyzed(b *testing.B) []*workflow.Analysis {
	b.Helper()
	var out []*workflow.Analysis
	for _, id := range figureWorkflows {
		an, err := suite.MustGet(id).Analyze()
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, an)
	}
	return out
}
