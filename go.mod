module github.com/essential-stats/etlopt

go 1.22
