// Package etlopt is a Go reproduction of "Determining Essential Statistics
// for Cost Based Optimization of an ETL Workflow" (Halasipuram, Deshpande,
// Padmanabhan — EDBT 2014).
//
// ETL workflows are designed once and executed repeatedly, but the ETL
// engine has no statistics about its sources, so cost-based optimization is
// normally impossible. The library analyzes a workflow, determines a
// minimum-cost set of statistics whose observation during a single run of
// the designed plan suffices to cost every reordering exactly, instruments
// and executes the plan, and then lets a conventional join-order optimizer
// pick the best plan for future runs.
//
// The implementation lives under internal/:
//
//	workflow   ETL DAG model, optimizable-block analysis (§3.2.1)
//	expr       sub-expression and plan-space enumeration (§3.2.2)
//	stats      statistic descriptors and exact-histogram algebra (§3.1, §4.1)
//	css        candidate-statistics-set generation, Algorithm 1 (§4)
//	costmodel  observation cost metrics (§5.4), FD and source-stats enhancements (§6)
//	lp, ilp    two-phase simplex and 0–1 branch and bound (§5.2 substrate)
//	selector   optimal statistics selection: ILP, exact B&B, greedy (§5)
//	engine     instrumented batch execution engine (§3.2.5–3.2.6)
//	estimate   numeric rule evaluation — exact derived cardinalities (§4.1)
//	optimizer  cost-based join-order optimization (§3.2.7)
//	payg       trivial-CSS / pay-as-you-go baseline (§7.3)
//	data       deterministic Zipfian data generation (§7)
//	suite      the 30-workflow evaluation suite (§7)
//	core       the full optimization loop of Figure 2
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduction of every table and figure.
package etlopt
