package main

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/essential-stats/etlopt/internal/suite"
)

// TestExitCode pins the documented process exit codes: 0 on success
// (including a degraded distributed fallback, which completes the run), 3
// on cancellation or deadline, 2 on an unknown suite workflow, 1 on any
// other runtime error.
func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"success", nil, 0},
		// A distributed run that loses every worker falls back in-process
		// and returns a nil error: degradation is reported on stderr, not
		// via the exit code.
		{"degraded fallback is success", nil, 0},
		{"canceled", context.Canceled, 3},
		{"deadline", context.DeadlineExceeded, 3},
		{"wrapped canceled", fmt.Errorf("run: %w", context.Canceled), 3},
		{"wrapped deadline", fmt.Errorf("run: %w", context.DeadlineExceeded), 3},
		{"unknown workflow", &suite.UnknownWorkflowError{ID: 99}, 2},
		{"wrapped unknown workflow", fmt.Errorf("suite: %w", &suite.UnknownWorkflowError{ID: 0}), 2},
		{"generic", errors.New("boom"), 1},
		{"wrapped generic", fmt.Errorf("run: %w", errors.New("boom")), 1},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("%s: exitCode(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestDistOptionsFor pins the -worker-addrs parsing: comma separation,
// whitespace trimming, empty entries dropped, and nil when -distributed is
// off.
func TestDistOptionsFor(t *testing.T) {
	if d := distOptionsFor(false, "http://a:1", 0, 0); d != nil {
		t.Errorf("distOptionsFor without -distributed must be nil, got %+v", d)
	}
	d := distOptionsFor(true, " http://a:1 ,http://b:2,, ", 0, 0)
	if d == nil {
		t.Fatal("distOptionsFor with -distributed returned nil")
	}
	want := []string{"http://a:1", "http://b:2"}
	if len(d.addrs) != len(want) || d.addrs[0] != want[0] || d.addrs[1] != want[1] {
		t.Errorf("addrs = %v, want %v", d.addrs, want)
	}
}
