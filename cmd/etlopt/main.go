// Command etlopt analyzes ETL workflow documents (workflow + catalog JSON)
// and determines the essential statistics to observe, per Halasipuram et
// al., EDBT 2014.
//
// Usage:
//
//	etlopt suite                      # list the built-in 30-workflow suite
//	etlopt export -wf 3               # print suite workflow 3 as JSON
//	etlopt analyze -f flow.json       # blocks and sub-expressions
//	etlopt stats   -f flow.json       # optimal statistics to observe
//	etlopt stats   -wf 3 -method greedy -union-division=false
//	etlopt baseline -wf 21            # trivial-CSS-only execution counts
//	etlopt dot     -wf 8 | dot -Tsvg  # Graphviz rendering with block clusters
//	etlopt run     -wf 3 -scale 0.002 # full cycle over generated data
//	etlopt run     -f flow.json -data dir/   # full cycle over CSV flat files
//	etlopt run     -wf 3 -metrics=table      # …plus per-operator metrics and the q-error report
//	etlopt explain -wf 3              # compiled physical plan with tap points
//	etlopt explain -wf 3 -derive      # …plus the derivation tree of every SE cardinality
//	etlopt explain -wf 3 -metrics=json       # …plus a Metrics section from an instrumented run
//	etlopt gendata -wf 3 -out dir/    # export a suite workflow's data as CSVs
//	etlopt schedule -wf 3 -budget 64  # Section 6.1 multi-run observation schedule
//	etlopt report  -wf 3 > cycle.md   # markdown report of one full cycle
//	etlopt run     -wf 3 -save-stats wf03.stats   # …and persist the observed statistics
//	etlopt run     -wf 3 -stats-tier=approx       # observe sketch-backed approximate statistics
//	etlopt run     -wf 3 -stats-tier=auto         # sketches compete with exact taps on cost
//	etlopt run     -wf 3 -adaptive                # mid-run re-optimization at block boundaries
//	etlopt run     -wf 3 -adaptive -replan-skew 4 # force a replan (block-0 estimates skewed 4x)
//	etlopt serve   -catalog dir -addr :8080       # statistics-serving daemon (docs/ARCHITECTURE.md)
//	etlopt worker  -addr :9091                    # block-execution worker (docs/DISTRIBUTED.md)
//	etlopt run     -wf 3 -distributed -worker-addrs http://localhost:9091,http://localhost:9092
//
// A workflow document is the JSON form of workflow.Document: the operator
// DAG plus the catalog of relations, domains and (optionally) functional
// dependencies. `etlopt export` produces examples to start from.
//
// The -metrics output on stdout is deterministic (row counts and q-errors
// only); the wall-clock timing summary goes to stderr.
//
// Runs honor -timeout and SIGINT/SIGTERM: the engines stop promptly, and
// whatever metrics the partial run gathered are still flushed (marked
// partial) before exiting. -faults injects deterministic failures for
// robustness testing (see docs/FAULTS.md), e.g.
//
//	etlopt run -wf 3 -faults seed=7,rate=1,transient=1   # retried transparently
//	etlopt run -wf 3 -faults seed=7,rate=0.4,kinds=tap   # degraded observation
//
// Exit codes: 0 on success, 1 on any runtime error (bad input file,
// failed run, exceeded -max-rows guard), 2 on usage errors (unknown
// subcommand, missing arguments, bad -wf or -faults value), 3 when the
// run was cancelled (SIGINT/SIGTERM) or hit the -timeout deadline.
//
// A -distributed run that loses every worker is NOT an error: the
// coordinator completes the run in-process from its last checkpoint,
// prints a "distributed: ... fell back in-process" summary on stderr, and
// exits 0 — outputs are byte-identical to a single-process run, only the
// placement degraded (docs/DISTRIBUTED.md).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/estimate"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/payg"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/schedule"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/serve"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/suite"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	file := fs.String("f", "", "workflow document (JSON) to load")
	wfID := fs.Int("wf", 0, "built-in suite workflow id (1..30) instead of -f")
	method := fs.String("method", "exact", "selection method: exact|greedy|lp")
	ud := fs.Bool("union-division", true, "enable the union–division rules J4/J5")
	scale := fs.Float64("scale", 0.002, "data scale for run/explain (suite workflows only)")
	dataDir := fs.String("data", "", "directory of CSV flat files to run over (instead of generated data)")
	outDir := fs.String("out", "", "output directory for gendata")
	budget := fs.Int64("budget", 0, "per-run memory budget for schedule (integer units)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "execution-layer worker goroutines (1 = sequential)")
	maxRows := fs.Int64("max-rows", 100_000_000, "abort a run whose intermediate results exceed this many rows (0 = unguarded)")
	derive := fs.Bool("derive", false, "explain: also print the derivation tree of every SE cardinality")
	metrics := fs.String("metrics", "", "run/explain: collect per-operator metrics and print them with the q-error report (table|json)")
	timeout := fs.Duration("timeout", 0, "abort run/explain/schedule/report after this duration (0 = no deadline)")
	faultSpec := fs.String("faults", "", "inject deterministic faults, e.g. seed=7,rate=0.5,transient=1,kinds=tap|op (see docs/FAULTS.md)")
	saveStats := fs.String("save-stats", "", "run: write the observed statistics to this file (the /v1/observe upload format)")
	statsTier := fs.String("stats-tier", "exact", "run/explain: statistics tier: exact | approx (sketch-backed observation wherever possible) | auto (sketches compete on cost)")
	adaptive := fs.Bool("adaptive", false, "run: execute the optimized plans adaptively, re-optimizing the not-yet-executed blocks when boundary actuals refute the estimates")
	replanThreshold := fs.Float64("replan-threshold", core.DefaultReplanThreshold, "run: base q-error a boundary actual must exceed to trigger an -adaptive replan (widened by plan-time calibration)")
	replanSkew := fs.Float64("replan-skew", 0, "run: multiply block 0's estimates by this factor during -adaptive boundary checks, forcing a replan (testing aid; 0 = off)")
	addr := fs.String("addr", ":8080", "serve/worker: listen address")
	distributed := fs.Bool("distributed", false, "run: dispatch plan blocks to remote workers (needs -worker-addrs; suite workflows only)")
	workerAddrs := fs.String("worker-addrs", "", "run: comma-separated worker base URLs, e.g. http://localhost:9091,http://localhost:9092")
	heartbeat := fs.Duration("heartbeat", 0, "run: health-probe period while a block is leased to a worker (0 = 200ms default)")
	leaseTTL := fs.Duration("lease-ttl", 0, "run: lease time-to-live without a successful probe before a block is reassigned (0 = 2s default)")
	catalogDir := fs.String("catalog", "", "serve: statistics catalog directory")
	drift := fs.Float64("drift", serve.DefaultDriftThreshold, "serve: max relative drift before cached solutions invalidate")
	cache := fs.Bool("cache", true, "serve: cache solved responses (off still deduplicates concurrent solves)")
	cacheBytes := fs.Int64("cache-bytes", serve.DefaultCacheBytes, "serve: solution-cache byte budget (LRU evicts beyond it)")
	maxSolves := fs.Int("max-solves", 0, "serve: max concurrent solver executions (0 = unlimited)")
	solveQueue := fs.Int("solve-queue", serve.DefaultSolveQueue, "serve: max requests waiting for a solve slot before shedding with 429 (with -max-solves)")
	peers := fs.String("peers", "", "serve: comma-separated base URLs of every daemon instance (consistent-hash sharding; include this one)")
	selfURL := fs.String("self", "", "serve: this daemon's own base URL as listed in -peers")
	shardProxy := fs.Bool("shard-proxy", false, "serve: proxy requests to their shard owner instead of 307-redirecting")
	warm := fs.Int("warm", 0, "serve: pre-solve this many of the hottest cataloged workflows at boot")
	_ = fs.Parse(os.Args[2:])

	inj, err := faults.Parse(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etlopt:", err)
		os.Exit(2)
	}
	tier, err := core.ParseStatsTier(*statsTier)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etlopt:", err)
		os.Exit(2)
	}

	// Runs honor SIGINT/SIGTERM and -timeout through one context; engines
	// poll it at operator and chunk boundaries, so cancellation is prompt
	// and the partial results remain consistent.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch cmd {
	case "suite":
		err = listSuite()
	case "export":
		err = export(*wfID)
	case "analyze":
		err = withDoc(*file, *wfID, analyze)
	case "stats":
		err = withDoc(*file, *wfID, func(doc *workflow.Document) error {
			return statsCmd(doc, *method, *ud)
		})
	case "baseline":
		err = withDoc(*file, *wfID, baseline)
	case "dot":
		err = withDoc(*file, *wfID, func(doc *workflow.Document) error {
			an, err := workflow.Analyze(doc.Workflow, doc.Catalog)
			if err != nil {
				return err
			}
			fmt.Print(doc.Workflow.DOT(an))
			return nil
		})
	case "run":
		err = runCycle(ctx, *file, *wfID, *dataDir, *scale, false, *workers, *maxRows, *metrics, inj, *saveStats, tier,
			adaptiveOptions(*adaptive, *replanThreshold, *replanSkew),
			distOptionsFor(*distributed, *workerAddrs, *heartbeat, *leaseTTL))
	case "serve":
		err = serveCmd(ctx, *addr, *catalogDir, serve.Options{
			DriftThreshold: *drift,
			DisableCache:   !*cache,
			CacheBytes:     *cacheBytes,
			MaxSolves:      *maxSolves,
			SolveQueue:     *solveQueue,
			Peers:          splitList(*peers),
			Self:           *selfURL,
			ShardProxy:     *shardProxy,
		}, *warm)
	case "worker":
		err = workerCmd(ctx, *addr)
	case "explain":
		err = explainCmd(ctx, *file, *wfID, *dataDir, *scale, *derive, *workers, *maxRows, *metrics, inj, tier)
	case "gendata":
		err = genData(*wfID, *scale, *outDir)
	case "schedule":
		err = scheduleCmd(ctx, *wfID, *scale, *budget, *workers, *maxRows, inj)
	case "report":
		err = reportCmd(ctx, *wfID, *scale, inj)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "etlopt:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps a top-level error onto the documented process exit codes:
// 3 for cancellation (SIGINT/SIGTERM or the -timeout deadline), 2 for
// usage errors (an unknown suite workflow, like a bad subcommand), 1 for
// any other runtime error. A nil error — including a distributed run that
// fell back in-process and completed degraded — exits 0.
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 3
	case errors.As(err, new(*suite.UnknownWorkflowError)):
		return 2
	}
	return 1
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: etlopt <suite|export|analyze|stats|baseline|dot|run|explain|gendata|schedule|report|serve|worker> [-f flow.json | -wf N] [flags]")
}

// serveCmd runs the statistics-serving daemon until SIGINT/SIGTERM, then
// drains and exits cleanly (exit code 0 — stopping a daemon is not an
// error).
func serveCmd(ctx context.Context, addr, catalogDir string, opts serve.Options, warm int) error {
	if catalogDir == "" {
		return fmt.Errorf("serve needs -catalog <dir>")
	}
	cat, err := serve.OpenCatalog(catalogDir)
	if err != nil {
		return err
	}
	srv, err := serve.New(cat, nil, opts)
	if err != nil {
		return err
	}
	if warm > 0 {
		n := srv.Warm(ctx, warm)
		fmt.Fprintf(os.Stderr, "etlopt serve: warmed %d workflow(s)\n", n)
	}
	fmt.Fprintf(os.Stderr, "etlopt serve: listening on %s, catalog %s (%d workflow(s) with statistics)\n",
		addr, catalogDir, len(cat.Workflows()))
	return srv.ListenAndServe(ctx, addr)
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// loadWorkflow resolves the graph, catalog and database for run/explain —
// a suite workflow's generated data, or a directory of CSV flat files (the
// paper's no-statistics worst case: the catalog is inferred from the data).
func loadWorkflow(file string, wfID int, dataDir string, scale float64) (*workflow.Graph, *workflow.Catalog, engine.DB, error) {
	switch {
	case dataDir != "":
		doc, err := loadDoc(file, wfID)
		if err != nil {
			return nil, nil, nil, err
		}
		tables, err := data.LoadDir(dataDir)
		if err != nil {
			return nil, nil, nil, err
		}
		return doc.Workflow, data.InferCatalog(tables), engine.DB(tables), nil
	case wfID != 0:
		w, err := suite.Get(wfID)
		if err != nil {
			return nil, nil, nil, err
		}
		return w.Graph, w.Catalog, w.Data(scale), nil
	default:
		return nil, nil, nil, fmt.Errorf("run/explain need -wf <1..30>, or -f flow.json with -data dir/")
	}
}

// workerCmd runs a block-execution worker until SIGINT/SIGTERM, then
// drains and exits cleanly (exit code 0 — stopping a worker is how fleets
// scale down, not an error).
func workerCmd(ctx context.Context, addr string) error {
	wk := serve.NewWorker()
	fmt.Fprintf(os.Stderr, "etlopt worker: listening on %s\n", addr)
	return wk.ListenAndServe(ctx, addr)
}

// distOptions carries the -distributed flag family.
type distOptions struct {
	addrs     []string
	heartbeat time.Duration
	leaseTTL  time.Duration
}

// distOptionsFor maps the -distributed/-worker-addrs/-heartbeat/-lease-ttl
// flags onto coordinator options; nil means a purely local run.
func distOptionsFor(on bool, addrs string, heartbeat, leaseTTL time.Duration) *distOptions {
	if !on {
		return nil
	}
	d := &distOptions{heartbeat: heartbeat, leaseTTL: leaseTTL}
	for _, a := range strings.Split(addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			d.addrs = append(d.addrs, a)
		}
	}
	return d
}

// adaptiveOptions maps the -adaptive/-replan-threshold/-replan-skew flags
// onto the core driver's options; nil means a plain optimized run.
func adaptiveOptions(on bool, threshold, skew float64) *core.AdaptiveOptions {
	if !on {
		return nil
	}
	opts := &core.AdaptiveOptions{Threshold: threshold}
	if skew > 0 {
		opts.Skew = map[int]float64{0: skew}
	}
	return opts
}

// runCycle executes one full optimization cycle, optionally printing the
// derivation tree of every SE cardinality.
func runCycle(ctx context.Context, file string, wfID int, dataDir string, scale float64, explain bool, workers int, maxRows int64, metricsFmt string, inj *faults.Injector, saveStats string, tier core.StatsTier, adapt *core.AdaptiveOptions, dist *distOptions) error {
	g, cat, db, err := loadWorkflow(file, wfID, dataDir, scale)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	cfg.MaxRows = maxRows
	cfg.CollectMetrics = metricsFmt != ""
	cfg.Faults = inj
	cfg.StatsTier = tier
	if dist != nil {
		if wfID == 0 || dataDir != "" {
			return fmt.Errorf("-distributed needs a suite workflow (-wf 1..30) so workers can regenerate the data deterministically")
		}
		if adapt != nil {
			return fmt.Errorf("-distributed is incompatible with -adaptive (replanning needs the sequential local scheduler)")
		}
		if cfg.CollectMetrics {
			return fmt.Errorf("-distributed is incompatible with -metrics (workers do not ship per-operator metrics)")
		}
		coord, err := serve.NewCoordinator(serve.RunSpec{
			WF:      wfID,
			Scale:   scale,
			Workers: workers,
			MaxRows: maxRows,
			Faults:  inj.String(),
			CSS:     cfg.CSS,
		}, serve.CoordinatorOptions{
			Addrs:          dist.addrs,
			HeartbeatEvery: dist.heartbeat,
			LeaseTTL:       dist.leaseTTL,
		})
		if err != nil {
			return err
		}
		cfg.Dispatcher = coord
	}
	cy, err := core.RunCtx(ctx, g, cat, db, cfg)
	if err != nil {
		// A cancelled or failed run still returns the partial cycle; flush
		// whatever metrics it gathered so the work isn't silently lost.
		if metricsFmt != "" && cy != nil && cy.Metrics != nil {
			fmt.Printf("partial metrics (run aborted: %v):\n", err)
			if werr := cy.WriteMetrics(os.Stdout, metricsFmt); werr != nil {
				return errors.Join(err, werr)
			}
		}
		return err
	}
	if saveStats != "" {
		f, err := os.Create(saveStats)
		if err != nil {
			return err
		}
		if err := cy.SaveStats(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saved %d observed statistics to %s\n",
			cy.Observed.Observed.Len(), saveStats)
	}
	// The distributed placement summary goes to stderr: stdout stays
	// byte-identical to a single-process run (the smoke test diffs them).
	if cy.Observed != nil && cy.Observed.Dist != nil {
		d := cy.Observed.Dist
		if d.FellBack {
			fmt.Fprintf(os.Stderr, "distributed: fell back in-process (%s): %d block(s) completed remotely, %d from the last checkpoint locally; run completed whole, outputs identical\n",
				d.Reason, len(d.Remote), len(d.Local))
		} else {
			fmt.Fprintf(os.Stderr, "distributed: %d block(s) executed remotely, %d reassignment(s), %d worker(s) lost\n",
				len(d.Remote), d.Reassigned, len(d.LostWorkers))
		}
	}
	fmt.Printf("workflow %s\n", g.Name)
	if cy.Observed != nil && cy.Observed.Retries > 0 {
		fmt.Printf("recovered from transient faults: %d block retry(s)\n", cy.Observed.Retries)
	}
	if cy.Degraded() {
		fmt.Println(cy.Degradation)
	}
	fmt.Printf("observed %d statistics (memory %d units) in one instrumented run\n\n",
		len(cy.Selection.Observe), cy.Selection.Memory)
	for bi, blk := range cy.Analysis.Blocks {
		p, ok := cy.Plans.Plans[bi]
		if !ok || p.Tree == nil {
			continue
		}
		fmt.Printf("block %d designed:  %s (cost %.0f)\n", bi, blk.Initial.Render(blk), p.InitialCost)
		fmt.Printf("block %d optimized: %s (cost %.0f)\n", bi, p.Tree.Render(blk), p.Cost)
	}
	fmt.Printf("\nplan-cost improvement: %.2fx\n", cy.Improvement())
	_ = scale
	if adapt != nil {
		ar, aerr := cy.RunOptimizedAdaptiveCtx(ctx, *adapt)
		if aerr != nil {
			return aerr
		}
		fmt.Println()
		fmt.Print(ar.Summary())
		fmt.Printf("adaptive run processed %d rows into %d sink(s)\n", ar.Run.Rows, len(ar.Run.Sinks))
	}
	if metricsFmt != "" {
		fmt.Println("\nmetrics:")
		if err := cy.WriteMetrics(os.Stdout, metricsFmt); err != nil {
			return err
		}
		// Wall-clock split goes to stderr so stdout stays deterministic.
		cy.WriteMetricsTimings(os.Stderr)
	}
	if !explain {
		return nil
	}
	fmt.Println("\nderivations:")
	for bi, sp := range cy.CSS.Spaces {
		blk := cy.Analysis.Blocks[bi]
		for _, se := range sp.SEs {
			ex, err := cy.Estimator.Explain(stats.NewCard(stats.BlockSE(bi, se)))
			if err != nil {
				return err
			}
			fmt.Print(ex.Render(blk))
		}
	}
	return nil
}

// explainCmd compiles the workflow's physical plan — the initial join trees
// instrumented with the exact-method statistic selection — and prints it
// with every tap point. The output is deterministic (no execution happens
// unless -metrics or -derive ask for it), so it doubles as a golden
// rendering of what an instrumented run would do. With -metrics it
// additionally executes one instrumented cycle and appends a Metrics
// section (per-operator row counts plus the q-error feedback report); with
// -derive it runs the full cycle and prints the derivation tree of every
// SE cardinality.
func explainCmd(ctx context.Context, file string, wfID int, dataDir string, scale float64, derive bool, workers int, maxRows int64, metricsFmt string, inj *faults.Injector, tier core.StatsTier) error {
	g, cat, db, err := loadWorkflow(file, wfID, dataDir, scale)
	if err != nil {
		return err
	}
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		return err
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		return err
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	sel, err := selector.Select(res, coster, selector.Options{Method: selector.MethodExact})
	if err != nil {
		return err
	}
	plan, err := physical.Compile(an, db, physical.Options{Res: res, Observe: sel.Observe})
	if err != nil {
		return err
	}
	fmt.Printf("workflow %s — compiled physical plan (%d block(s), %d tap(s))\n\n",
		g.Name, len(plan.Blocks), plan.NumTaps())
	fmt.Print(plan.String())
	if metricsFmt != "" {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		cfg.MaxRows = maxRows
		cfg.CollectMetrics = true
		cfg.Faults = inj
		cfg.StatsTier = tier
		cy, err := core.RunCtx(ctx, g, cat, db, cfg)
		if err != nil {
			return err
		}
		fmt.Println("\nmetrics (one instrumented run):")
		if err := cy.WriteMetrics(os.Stdout, metricsFmt); err != nil {
			return err
		}
		cy.WriteMetricsTimings(os.Stderr)
	}
	if !derive {
		return nil
	}
	fmt.Println()
	return runCycle(ctx, file, wfID, dataDir, scale, true, workers, maxRows, "", inj, "", tier, nil, nil)
}

// reportCmd runs one cycle over a suite workflow and writes the markdown
// report to stdout.
func reportCmd(ctx context.Context, wfID int, scale float64, inj *faults.Injector) error {
	w, err := suite.Get(wfID)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Faults = inj
	cy, err := core.RunCtx(ctx, w.Graph, w.Catalog, w.Data(scale), cfg)
	if err != nil {
		return err
	}
	return cy.Report(os.Stdout)
}

// scheduleCmd builds and executes a Section 6.1 multi-run observation
// schedule under a per-run memory budget, then derives every SE cardinality
// from the merged observations.
func scheduleCmd(ctx context.Context, wfID int, scale float64, budget int64, workers int, maxRows int64, inj *faults.Injector) error {
	w, err := suite.Get(wfID)
	if err != nil {
		return err
	}
	if budget <= 0 {
		return fmt.Errorf("schedule needs -budget <units>")
	}
	an, err := workflow.Analyze(w.Graph, w.Catalog)
	if err != nil {
		return err
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		return err
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	u, err := selector.NewUniverse(res, coster)
	if err != nil {
		return err
	}
	plan, err := schedule.Build(u, budget)
	if err != nil {
		return err
	}
	fmt.Printf("budget %d units → %d scheduled run(s)\n", budget, len(plan.Runs))
	for r, run := range plan.Runs {
		fmt.Printf("run %d:\n", r+1)
		for bi, tree := range run.Trees {
			fmt.Printf("  block %d re-ordered: %s\n", bi, tree.Render(an.Blocks[bi]))
		}
		for _, st := range run.Observe {
			fmt.Printf("  observe %s\n", st.Label(an.Blocks[st.Target.Block]))
		}
	}
	db := w.Data(scale)
	eng := engine.New(an, db, nil)
	eng.Workers = workers
	eng.MaxRows = maxRows
	eng.Faults = inj
	store, err := schedule.ExecuteCtx(ctx, eng, res, plan)
	if err != nil {
		return err
	}
	est := estimate.New(res, store)
	fmt.Println("\nderived cardinalities after the schedule:")
	for bi, sp := range res.Spaces {
		blk := an.Blocks[bi]
		for _, se := range sp.SEs {
			card, err := est.CardOf(bi, se)
			if err != nil {
				return err
			}
			fmt.Printf("  |%s| = %d\n", se.Label(blk), card)
		}
	}
	return nil
}

// genData exports a suite workflow's generated relations as CSV files, so
// the flat-file path can be tried end to end.
func genData(wfID int, scale float64, outDir string) error {
	w, err := suite.Get(wfID)
	if err != nil {
		return err
	}
	if outDir == "" {
		return fmt.Errorf("gendata needs -out <dir>")
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	db := w.Data(scale)
	for rel, tbl := range db {
		f, err := os.Create(filepath.Join(outDir, rel+".csv"))
		if err != nil {
			return err
		}
		if err := data.WriteCSV(f, tbl); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d relations to %s\n", len(db), outDir)
	return nil
}

func withDoc(file string, wfID int, f func(*workflow.Document) error) error {
	doc, err := loadDoc(file, wfID)
	if err != nil {
		return err
	}
	return f(doc)
}

func loadDoc(file string, wfID int) (*workflow.Document, error) {
	switch {
	case file != "":
		fh, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer fh.Close()
		return workflow.Decode(fh)
	case wfID != 0:
		w, err := suite.Get(wfID)
		if err != nil {
			return nil, err
		}
		return &workflow.Document{Workflow: w.Graph, Catalog: w.Catalog}, nil
	default:
		return nil, fmt.Errorf("need -f <file> or -wf <1..30>")
	}
}

func listSuite() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "id\tname\tnote")
	for _, wf := range suite.All() {
		fmt.Fprintf(w, "%d\t%s\t%s\n", wf.ID, wf.Name, wf.Note)
	}
	return w.Flush()
}

func export(wfID int) error {
	w, err := suite.Get(wfID)
	if err != nil {
		return err
	}
	doc := &workflow.Document{Workflow: w.Graph, Catalog: w.Catalog}
	return doc.Encode(os.Stdout)
}

func analyze(doc *workflow.Document) error {
	an, err := workflow.Analyze(doc.Workflow, doc.Catalog)
	if err != nil {
		return err
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("workflow %q: %d nodes, %d optimizable block(s)\n\n",
		doc.Workflow.Name, len(doc.Workflow.Nodes), len(an.Blocks))
	for bi, blk := range an.Blocks {
		sp := res.Space(bi)
		fmt.Printf("block %d: %d input(s), %d join(s)", bi, len(blk.Inputs), len(blk.Joins))
		if blk.RejectPinned {
			fmt.Print(" [pinned by reject link]")
		}
		fmt.Println()
		for _, in := range blk.Inputs {
			src := in.SourceRel
			if src == "" {
				src = fmt.Sprintf("output of block %d", in.FromBlock)
			}
			fmt.Printf("  input %-14s ← %s (%d pushed-down op(s))\n", in.Name, src, len(in.Ops))
		}
		if blk.Initial != nil {
			fmt.Printf("  designed plan: %s\n", blk.Initial.Render(blk))
		}
		fmt.Printf("  sub-expressions (%d):\n", len(sp.SEs))
		for _, se := range sp.SEs {
			mark := " "
			if sp.Initial[se] {
				mark = "*"
			}
			fmt.Printf("   %s %s\n", mark, se.Label(blk))
		}
		fmt.Println()
	}
	fmt.Printf("statistic universe: %d statistics, %d candidate statistics sets\n",
		len(res.Stats), res.NumCSS())
	return nil
}

func statsCmd(doc *workflow.Document, method string, ud bool) error {
	an, err := workflow.Analyze(doc.Workflow, doc.Catalog)
	if err != nil {
		return err
	}
	opt := css.DefaultOptions()
	opt.UnionDivision = ud
	res, err := css.Generate(an, opt)
	if err != nil {
		return err
	}
	var m selector.Method
	switch method {
	case "exact":
		m = selector.MethodExact
	case "greedy":
		m = selector.MethodGreedy
	case "lp":
		m = selector.MethodLP
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	sel, err := selector.Select(res, coster, selector.Options{Method: m})
	if err != nil {
		return err
	}
	fmt.Printf("method=%s optimal=%v cost=%.0f memory=%d units\n\n", sel.Method, sel.Optimal, sel.Cost, sel.Memory)
	fmt.Println("observe:")
	for _, s := range sel.Observe {
		blk := an.Blocks[s.Target.Block]
		extra := ""
		if res.NeedsRejectLink[s.Key()] {
			extra = "   [requires added reject link]"
		}
		fmt.Printf("  block %d: %s%s\n", s.Target.Block, s.Label(blk), extra)
	}
	return nil
}

func baseline(doc *workflow.Document) error {
	an, err := workflow.Analyze(doc.Workflow, doc.Catalog)
	if err != nil {
		return err
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		return err
	}
	rep := payg.Evaluate(res)
	fmt.Println("trivial-CSS-only baseline (pay-as-you-go, Section 7.3):")
	fmt.Printf("  formula lower bound:  %d execution(s)\n", rep.FormulaLB)
	fmt.Printf("  semantic lower bound: %d execution(s)\n", rep.SemanticLB)
	fmt.Printf("  found plan sequence:  %d execution(s)\n", rep.Found)
	fmt.Printf("  this framework:       1 execution\n")
	for _, br := range rep.PerBlock {
		fmt.Printf("  block %d (%d inputs): formula %d, semantic %d, found %d\n",
			br.Block, br.Inputs, br.FormulaLB, br.SemanticLB, br.Found)
	}
	return nil
}
