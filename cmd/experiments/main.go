// Command experiments regenerates the paper's evaluation tables and
// figures (Section 7) over the 30-workflow suite and prints them as text
// tables.
//
// Usage:
//
//	experiments -exp=all        # everything below
//	experiments -exp=data       # Section 7 data-characteristics table
//	experiments -exp=fig9       # workflow complexity (#SEs, #CSS ± union–division)
//	experiments -exp=fig10      # statistics-identification time
//	experiments -exp=fig11      # memory for the optimal statistics ± union–division
//	experiments -exp=fig12      # executions needed by the trivial-CSS baseline
//	experiments -exp=e2e        # end-to-end: observe once, cost all reorderings exactly
//	experiments -exp=greedy     # exact-vs-greedy ablation
//	experiments -exp=budget     # Section 6.1 memory-budget sweep
//	experiments -exp=free       # Section 6.2 free source statistics ablation
//	experiments -scale=0.01     # data scale for -exp=data and -exp=e2e
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"

	"github.com/essential-stats/etlopt/internal/experiments"
	"github.com/essential-stats/etlopt/internal/suite"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: data|fig9|fig10|fig11|fig12|e2e|greedy|budget|free|error|work|scale|all")
	scale := flag.Float64("scale", 0.002, "data scale for -exp=e2e")
	dataScale := flag.Float64("datascale", 1.0, "data scale for -exp=data (1.0 = the paper-sized relations)")
	seq := flag.Bool("seq", false, "measure workflows sequentially (timing-grade Figure 10 numbers)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker count for -exp=e2e and -exp=work (<=1 = sequential)")
	wfID := flag.Int("wf", 0, "restrict -exp=e2e to one suite workflow id (1..30)")
	flag.Parse()
	sequential = *seq
	experiments.Workers = *workers

	var err error
	switch {
	case *wfID != 0:
		err = runOne(*wfID, *scale)
	default:
		err = dispatch(*exp, *scale, *dataScale)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		var unknown *suite.UnknownWorkflowError
		if errors.As(err, &unknown) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// runOne prints the end-to-end row for a single suite workflow.
func runOne(wfID int, scale float64) error {
	row, err := experiments.EndToEndWorkflow(wfID, scale)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "wf\tSEs\texact\tinitCost\toptCost\tspeedup\tinitRows\toptRows\tmaxQ\ttap%")
	fmt.Fprintf(w, "%d\t%d\t%d/%d\t%.0f\t%.0f\t%.2fx\t%d\t%d\t%.3g\t%.1f\n",
		row.ID, row.SEs, row.ExactSEs, row.SEs, row.InitCost, row.OptCost, row.Speedup,
		row.InitRows, row.OptRows, row.MaxQ, row.TapPct)
	return w.Flush()
}

func dispatch(exp string, scale, dataScale float64) error {
	switch exp {
	case "data":
		return runData(dataScale)
	case "fig9", "fig10", "fig11", "fig12", "greedy":
		return runRows(exp)
	case "e2e":
		return runE2E(scale)
	case "budget":
		return runBudget()
	case "free":
		return runFree()
	case "error":
		return runError(scale)
	case "work":
		return runWork(scale)
	case "scale":
		return runScale()
	case "all":
		for _, e := range []func() error{
			func() error { return runData(dataScale) },
			func() error { return runRows("fig9") },
			func() error { return runRows("fig10") },
			func() error { return runRows("fig11") },
			func() error { return runRows("fig12") },
			func() error { return runRows("greedy") },
			func() error { return runE2E(scale) },
			runBudget,
			runFree,
			func() error { return runError(scale) },
			func() error { return runWork(scale) },
			runScale,
		} {
			if err := e(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func runData(scale float64) error {
	fmt.Printf("== E1: data characteristics (Section 7 table; scale %.3g) ==\n", scale)
	ch := experiments.DataCharacteristics(scale)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Stat\tCard\tUV")
	fmt.Fprintf(w, "Max\t%d\t%d\n", ch.CardMax, ch.UVMax)
	fmt.Fprintf(w, "Min\t%d\t%d\n", ch.CardMin, ch.UVMin)
	fmt.Fprintf(w, "Mean\t%d\t%d\n", ch.CardMean, ch.UVMean)
	fmt.Fprintf(w, "Median\t%d\t%d\n", ch.CardMedian, ch.UVMedian)
	w.Flush()
	fmt.Println()
	return nil
}

var (
	cachedRows []*experiments.WorkflowRow
	sequential bool
)

func rows() ([]*experiments.WorkflowRow, error) {
	if cachedRows != nil {
		return cachedRows, nil
	}
	var err error
	if sequential {
		cachedRows, err = experiments.RunAllSeq()
	} else {
		cachedRows, err = experiments.RunAll()
	}
	return cachedRows, err
}

func runRows(which string) error {
	rs, err := rows()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	switch which {
	case "fig9":
		fmt.Println("== E2 / Figure 9: complexity of the workflows ==")
		fmt.Fprintln(w, "wf\t#SEs\t#CSS\t#CSS+UD")
		for _, r := range rs {
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\n", r.ID, r.SEs, r.CSSPlain, r.CSSUnionDiv)
		}
	case "fig10":
		fmt.Println("== E3 / Figure 10: time for statistics identification ==")
		fmt.Fprintln(w, "wf\tCSSgen\tCSSgen+UD\tselect\ttotal")
		for _, r := range rs {
			fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%v\n", r.ID, r.GenPlain.Round(100_000), r.GenUD.Round(100_000),
				r.SelectTime.Round(100_000), (r.GenUD + r.SelectTime).Round(100_000))
		}
	case "fig11":
		fmt.Println("== E4 / Figure 11: memory for observing the optimal statistics ==")
		fmt.Fprintln(w, "wf\tmem\tmem+UD\toptimal\toptimal+UD")
		for _, r := range rs {
			fmt.Fprintf(w, "%d\t%d\t%d\t%v\t%v\n", r.ID, r.MemPlain, r.MemUD, r.OptimalPlain, r.OptimalUD)
		}
	case "fig12":
		fmt.Println("== E5 / Figure 12: executions to cover all SEs (trivial-CSS baseline) ==")
		fmt.Fprintln(w, "wf\tformulaLB\tsemanticLB\tfound\tframework")
		for _, r := range rs {
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t1\n", r.ID, r.FormulaLB, r.SemanticLB, r.Found)
		}
	case "greedy":
		fmt.Println("== Ablation: exact ILP vs greedy heuristic (memory units, with UD) ==")
		fmt.Fprintln(w, "wf\texact\tgreedy\tgap%")
		for _, r := range rs {
			gap := 0.0
			if r.MemUD > 0 {
				gap = 100 * float64(r.GreedyMem-r.MemUD) / float64(r.MemUD)
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%.1f\n", r.ID, r.MemUD, r.GreedyMem, gap)
		}
	}
	w.Flush()
	fmt.Println()
	return nil
}

func runE2E(scale float64) error {
	fmt.Printf("== E6: end-to-end — observe once, optimize exactly (scale %.3g) ==\n", scale)
	rs, err := experiments.EndToEnd(scale)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "wf\tSEs\texact\tinitCost\toptCost\tspeedup\tinitRows\toptRows\tmaxQ\ttap%")
	for _, r := range rs {
		fmt.Fprintf(w, "%d\t%d\t%d/%d\t%.0f\t%.0f\t%.2fx\t%d\t%d\t%.3g\t%.1f\n",
			r.ID, r.SEs, r.ExactSEs, r.SEs, r.InitCost, r.OptCost, r.Speedup, r.InitRows, r.OptRows, r.MaxQ, r.TapPct)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func runBudget() error {
	fmt.Println("== Section 6.1: per-run memory budget vs executions needed (wf09) ==")
	rs, err := experiments.BudgetSweep(9)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "budget\truns\ttotalMem")
	for _, r := range rs {
		fmt.Fprintf(w, "%d\t%d\t%d\n", r.Budget, r.Runs, r.TotalMem)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func runError(scale float64) error {
	fmt.Printf("== Section 8 extension: estimation error vs histogram memory (scale %.3g) ==\n", scale)
	rs, err := experiments.ErrorSweep([]int{5, 9, 16, 17}, scale, []int{2, 8, 32, 128, 0})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "buckets\tmemory\tobsCPU\tmeanRelErr\tmaxRelErr\tjoins")
	for _, r := range rs {
		label := fmt.Sprintf("%d", r.Buckets)
		if r.Sketch {
			label = "cm-sketch"
		} else if r.Buckets == 0 {
			label = "exact"
		}
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.4f\t%.4f\t%d\n", label, r.Memory, r.CPU, r.MeanRelErr, r.MaxRelErr, r.Joins)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func runWork(scale float64) error {
	fmt.Printf("== Baseline engine work: pay-as-you-go sequence vs one instrumented run (scale %.3g) ==\n", scale)
	rs, err := experiments.WorkComparison([]int{5, 9, 17, 30}, scale)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "wf\truns\tbaselineRows\tframeworkRows\tmultiplier")
	for _, r := range rs {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.1fx\n", r.ID, r.Runs, r.BaselineRows, r.FrameworkRows, r.Multiplier)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func runScale() error {
	fmt.Println("== Scalability: identification cost vs join width ==")
	rs, err := experiments.ScaleSweep(9)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shape\tn\tstats\tCSS\tgen\tselect\tmem\toptimal")
	for _, r := range rs {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%v\t%v\t%d\t%v\n",
			r.Shape, r.N, r.Stats, r.CSS, r.Gen.Round(100_000), r.Select.Round(100_000), r.Mem, r.Optimal)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func runFree() error {
	fmt.Println("== Section 6.2: free source statistics ablation ==")
	rs, err := experiments.FreeSourceAblation()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "wf\tmem\tmem(free src)\tsaved%")
	for _, r := range rs {
		saved := 0.0
		if r.Mem > 0 {
			saved = 100 * float64(r.Mem-r.MemFree) / float64(r.Mem)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%.1f\n", r.ID, r.Mem, r.MemFree, saved)
	}
	w.Flush()
	fmt.Println()
	return nil
}
