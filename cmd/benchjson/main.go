// Command benchjson converts `go test -bench` text output into a JSON
// record suitable for committing alongside a PR (BENCH_<pr>.json). It reads
// the benchmark text from stdin, tees it unchanged to stdout so the run
// stays readable, and writes the parsed results to -out.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x -run='^$' ./... | go run ./cmd/benchjson -out BENCH_pr3.json
//
// Each parsed line becomes {"name", "iterations", "ns_per_op", and, when
// -benchmem was set, "bytes_per_op", "allocs_per_op"}. Lines that are not
// benchmark results are passed through and ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkMetricsOverhead/batch/metrics=off-8   1   1234567 ns/op   4096 B/op   12 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("out", "", "path of the JSON file to write (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: go test -bench=. ... | benchjson -out BENCH.json")
		os.Exit(2)
	}

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, _ := strconv.ParseInt(m[4], 10, 64)
			r.BytesPerOp = &b
		}
		if m[5] != "" {
			a, _ := strconv.ParseInt(m[5], 10, 64)
			r.AllocsPerOp = &a
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Benchmarks []Result `json:"benchmarks"`
	}{results}); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}
