// Command benchjson converts `go test -bench` text output into a JSON
// record suitable for committing alongside a PR (BENCH_<pr>.json). It reads
// the benchmark text from stdin, tees it unchanged to stdout so the run
// stays readable, and writes the parsed results to -out.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=3x -count=2 -run='^$' ./... | go run ./cmd/benchjson -min-iters 2 -out BENCH_pr6.json
//
// Each parsed line becomes {"name", "iterations", "ns_per_op", and, when
// -benchmem was set, "bytes_per_op", "allocs_per_op"}. Lines that are not
// benchmark results are passed through and ignored.
//
// Two guards keep the committed numbers honest:
//
//   - Lines whose iteration count is below -min-iters are rejected: a
//     single-iteration measurement is dominated by warmup and scheduling
//     noise, and a record built from them is not comparable across runs.
//     The offending lines are listed on stderr and the tool exits nonzero
//     without writing -out.
//
//   - Repetitions of the same benchmark (from `go test -count=N`) fold
//     into one entry: iterations are summed, and ns/op, B/op and allocs/op
//     keep the minimum across repetitions — the run least disturbed by the
//     machine is the closest to the benchmark's true cost.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkMetricsOverhead/batch/metrics=off-8   3   1234567 ns/op   4096 B/op   12 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// fold merges a repetition of the same benchmark into r: iterations
// accumulate, per-op costs keep their minimum.
func (r *Result) fold(o Result) {
	r.Iterations += o.Iterations
	if o.NsPerOp < r.NsPerOp {
		r.NsPerOp = o.NsPerOp
	}
	r.BytesPerOp = minPtr(r.BytesPerOp, o.BytesPerOp)
	r.AllocsPerOp = minPtr(r.AllocsPerOp, o.AllocsPerOp)
}

func minPtr(a, b *int64) *int64 {
	if a == nil {
		return b
	}
	if b != nil && *b < *a {
		return b
	}
	return a
}

func main() {
	out := flag.String("out", "", "path of the JSON file to write (required)")
	minIters := flag.Int64("min-iters", 2, "reject benchmark lines with fewer iterations than this")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: go test -bench=. ... | benchjson -out BENCH.json")
		os.Exit(2)
	}

	var (
		results []Result // first-seen order
		index   = map[string]int{}
		tooFew  []string
	)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		if iters < *minIters {
			tooFew = append(tooFew, line)
			continue
		}
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, _ := strconv.ParseInt(m[4], 10, 64)
			r.BytesPerOp = &b
		}
		if m[5] != "" {
			a, _ := strconv.ParseInt(m[5], 10, 64)
			r.AllocsPerOp = &a
		}
		if i, ok := index[r.Name]; ok {
			results[i].fold(r)
		} else {
			index[r.Name] = len(results)
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(tooFew) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark line(s) ran fewer than %d iterations; pin -benchtime (e.g. -benchtime=3x):\n", len(tooFew), *minIters)
		for _, l := range tooFew {
			fmt.Fprintf(os.Stderr, "  %s\n", l)
		}
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Benchmarks []Result `json:"benchmarks"`
	}{results}); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}
