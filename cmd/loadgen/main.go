// Command loadgen drives an etlopt statistics daemon with a spec-defined
// request mix and reports sustained throughput and latency percentiles.
//
// With no -addr it self-hosts: it opens a throwaway catalog, mounts the
// serve handler on a loopback listener, and drives that — the mode behind
// `make bench`, which publishes the result as BENCH_serve.json. With -addr
// it drives a running daemon over the network (the load-smoke CI job).
//
// The spec file (see loadspecs/) sets duration, warmup, concurrency, an
// optional aggregate QPS throttle, the workflow set, the data scale for
// the observed-statistics streams, and the optimize/estimate/observe mix.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/serve"
	"github.com/essential-stats/etlopt/internal/suite"
)

func main() {
	spec := flag.String("spec", "loadspecs/bench.yaml", "load specification file")
	addr := flag.String("addr", "", "daemon base URL, e.g. http://127.0.0.1:8080 (empty: self-host an in-process daemon)")
	out := flag.String("out", "", "write the JSON report here (empty: stdout only)")
	flag.Parse()
	if err := run(*spec, *addr, *out); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type sample struct {
	op       string
	status   int
	ms       float64
	measured bool
}

type latencySummary struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

type opSummary struct {
	Requests  int64          `json:"requests"`
	QPS       float64        `json:"qps"`
	LatencyMs latencySummary `json:"latencyMs"`
}

type report struct {
	Spec            string               `json:"spec"`
	Addr            string               `json:"addr"`
	SelfHosted      bool                 `json:"selfHosted"`
	Concurrency     int                  `json:"concurrency"`
	TargetQPS       float64              `json:"targetQps,omitempty"`
	MeasuredSeconds float64              `json:"measuredSeconds"`
	Requests        int64                `json:"requests"`
	QPS             float64              `json:"qps"`
	LatencyMs       latencySummary       `json:"latencyMs"`
	// Status buckets count the WHOLE run, warmup included — an error or a
	// shed during the cold-start convoy still matters to a smoke gate.
	// Requests/QPS/latencies cover only the post-warmup window.
	Status map[string]int64     `json:"status"`
	Ops    map[string]opSummary `json:"ops"`
}

func run(specPath, addr, outPath string) error {
	spec, err := loadSpec(specPath)
	if err != nil {
		return err
	}

	// Observed-statistics streams, one per workflow: both the seed upload
	// and the observe ops in the mix replay these. Re-uploading the same
	// stream advances the generation without drift, so cached solutions
	// legitimately survive — the cache-reuse path under churn.
	streams := make(map[string][]byte, len(spec.Workflows))
	for _, name := range spec.Workflows {
		w, err := suiteByName(name)
		if err != nil {
			return err
		}
		cy, err := core.Run(w.Graph, w.Catalog, w.Data(spec.Scale), core.DefaultConfig())
		if err != nil {
			return fmt.Errorf("observing %s: %w", name, err)
		}
		var buf bytes.Buffer
		if err := cy.SaveStats(&buf); err != nil {
			return err
		}
		streams[name] = buf.Bytes()
	}

	base := strings.TrimRight(addr, "/")
	selfHosted := base == ""
	if selfHosted {
		var stop func()
		base, stop, err = selfHost()
		if err != nil {
			return err
		}
		defer stop()
	}

	client := &http.Client{Timeout: 60 * time.Second}

	// Seed: every workflow needs one generation before optimize answers.
	for _, name := range spec.Workflows {
		status, err := post(client, base+"/v1/observe?workflow="+name, "application/octet-stream", streams[name])
		if err != nil {
			return fmt.Errorf("seeding %s: %w", name, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("seeding %s: daemon answered %d", name, status)
		}
	}

	seq := spec.schedule()
	var pace <-chan time.Time
	if spec.QPS > 0 {
		tick := time.NewTicker(time.Duration(float64(time.Second) / spec.QPS))
		defer tick.Stop()
		pace = tick.C
	}

	start := time.Now()
	warmEnd := start.Add(spec.Warmup)
	deadline := start.Add(spec.Duration)
	perWorker := make([][]sample, spec.Concurrency)
	var wg sync.WaitGroup
	for wk := 0; wk < spec.Concurrency; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			var samples []sample
			for i := wk; time.Now().Before(deadline); i++ {
				if pace != nil {
					<-pace
					if !time.Now().Before(deadline) {
						break
					}
				}
				op := seq[i%len(seq)]
				wf := spec.Workflows[i%len(spec.Workflows)]
				t0 := time.Now()
				status := doOp(client, base, op, wf, streams[wf])
				samples = append(samples, sample{
					op:       op,
					status:   status,
					ms:       float64(time.Since(t0)) / float64(time.Millisecond),
					measured: !t0.Before(warmEnd),
				})
			}
			perWorker[wk] = samples
		}(wk)
	}
	wg.Wait()
	measured := time.Since(warmEnd)

	rep := aggregate(specPath, base, selfHosted, spec, perWorker, measured)
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, enc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", outPath)
	} else {
		os.Stdout.Write(enc)
	}
	fmt.Fprintf(os.Stderr,
		"loadgen: %d requests over %.1fs — %.1f req/s, p50 %.1fms p99 %.1fms (2xx=%d 429=%d 4xx=%d 5xx=%d)\n",
		rep.Requests, rep.MeasuredSeconds, rep.QPS,
		rep.LatencyMs.P50, rep.LatencyMs.P99,
		rep.Status["2xx"], rep.Status["429"], rep.Status["4xx"], rep.Status["5xx"])
	return nil
}

// selfHost mounts a fresh daemon (suite workflows, throwaway catalog) on a
// loopback listener and returns its base URL.
func selfHost() (string, func(), error) {
	dir, err := os.MkdirTemp("", "loadgen-catalog-")
	if err != nil {
		return "", nil, err
	}
	cat, err := serve.OpenCatalog(dir)
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	srv, err := serve.New(cat, nil, serve.Options{})
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		hs.Close()
		os.RemoveAll(dir)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func doOp(client *http.Client, base, op, wf string, stream []byte) int {
	var status int
	var err error
	switch op {
	case "observe":
		status, err = post(client, base+"/v1/observe?workflow="+wf, "application/octet-stream", stream)
	default: // optimize | estimate (validated by the spec parser)
		body := []byte(fmt.Sprintf(`{"workflow":%q}`, wf))
		status, err = post(client, base+"/v1/"+op, "application/json", body)
	}
	if err != nil {
		return 0 // transport failure; bucketed as "error"
	}
	return status
}

func post(client *http.Client, url, contentType string, body []byte) (int, error) {
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func aggregate(specPath, base string, selfHosted bool, spec *Spec, perWorker [][]sample, measured time.Duration) *report {
	rep := &report{
		Spec:            specPath,
		Addr:            base,
		SelfHosted:      selfHosted,
		Concurrency:     spec.Concurrency,
		TargetQPS:       spec.QPS,
		MeasuredSeconds: measured.Seconds(),
		Status:          map[string]int64{"2xx": 0, "429": 0, "4xx": 0, "5xx": 0},
		Ops:             map[string]opSummary{},
	}
	var all []float64
	perOp := map[string][]float64{}
	for _, samples := range perWorker {
		for _, s := range samples {
			rep.Status[bucket(s.status)]++
			if !s.measured {
				continue
			}
			rep.Requests++
			all = append(all, s.ms)
			perOp[s.op] = append(perOp[s.op], s.ms)
		}
	}
	if sec := rep.MeasuredSeconds; sec > 0 {
		rep.QPS = float64(rep.Requests) / sec
	}
	rep.LatencyMs = percentiles(all)
	for op, ms := range perOp {
		s := opSummary{Requests: int64(len(ms)), LatencyMs: percentiles(ms)}
		if sec := rep.MeasuredSeconds; sec > 0 {
			s.QPS = float64(len(ms)) / sec
		}
		rep.Ops[op] = s
	}
	return rep
}

func bucket(status int) string {
	switch {
	case status == 0:
		return "error"
	case status == http.StatusTooManyRequests:
		return "429"
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 200 && status < 300:
		return "2xx"
	default:
		return "3xx"
	}
}

func percentiles(ms []float64) latencySummary {
	if len(ms) == 0 {
		return latencySummary{}
	}
	sort.Float64s(ms)
	at := func(q float64) float64 { return ms[int(q*float64(len(ms)-1))] }
	return latencySummary{
		P50: at(0.50), P90: at(0.90), P95: at(0.95), P99: at(0.99),
		Max: ms[len(ms)-1],
	}
}

func suiteByName(name string) (*suite.Workflow, error) {
	for _, w := range suite.All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("no suite workflow %q (wf01..wf30)", name)
}
