package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Spec is a parsed load specification.
type Spec struct {
	// Duration is the total driving time, including warmup.
	Duration time.Duration
	// Warmup excludes the leading part of the run from the report, so
	// cold-cache solves and connection setup don't pollute tail latencies.
	Warmup time.Duration
	// Concurrency is the number of closed-loop workers.
	Concurrency int
	// QPS throttles the aggregate request rate; 0 drives as fast as the
	// workers can (closed loop).
	QPS float64
	// Scale sizes the generated source data for the observed-statistics
	// streams (suite scale units, like `etlopt run -scale`).
	Scale float64
	// Workflows lists the suite workflows to spread requests over.
	Workflows []string
	// Mix weights the request types: optimize, estimate, observe.
	Mix map[string]int
}

// loadSpec reads a spec file in the tiny YAML subset the repo uses
// (dependency-free): `key: value` lines, inline `[a, b]` lists, one
// two-space-indented `mix:` block, and `#` comments.
func loadSpec(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := parseSpec(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func parseSpec(r io.Reader) (*Spec, error) {
	s := &Spec{}
	sc := bufio.NewScanner(r)
	inMix := false
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Text()
		if i := strings.IndexByte(raw, '#'); i >= 0 {
			raw = raw[:i]
		}
		if strings.TrimSpace(raw) == "" {
			continue
		}
		indented := strings.HasPrefix(raw, "  ")
		key, val, ok := strings.Cut(strings.TrimSpace(raw), ":")
		if !ok {
			return nil, fmt.Errorf("line %d: want `key: value`, got %q", line, raw)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)

		if indented {
			if !inMix {
				return nil, fmt.Errorf("line %d: indented %q outside a mix: block", line, key)
			}
			w, err := strconv.Atoi(val)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("line %d: mix weight %q must be a positive integer", line, val)
			}
			switch key {
			case "optimize", "estimate", "observe":
				s.Mix[key] = w
			default:
				return nil, fmt.Errorf("line %d: unknown mix op %q (optimize|estimate|observe)", line, key)
			}
			continue
		}
		inMix = false

		var err error
		switch key {
		case "duration":
			s.Duration, err = time.ParseDuration(val)
		case "warmup":
			s.Warmup, err = time.ParseDuration(val)
		case "concurrency":
			s.Concurrency, err = strconv.Atoi(val)
		case "qps":
			s.QPS, err = strconv.ParseFloat(val, 64)
		case "scale":
			s.Scale, err = strconv.ParseFloat(val, 64)
		case "workflows":
			s.Workflows, err = parseList(val)
		case "mix":
			if val != "" {
				return nil, fmt.Errorf("line %d: mix: starts an indented block, got inline %q", line, val)
			}
			s.Mix = map[string]int{}
			inMix = true
		default:
			return nil, fmt.Errorf("line %d: unknown key %q", line, key)
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %s: %v", line, key, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, s.finish()
}

func parseList(val string) ([]string, error) {
	if !strings.HasPrefix(val, "[") || !strings.HasSuffix(val, "]") {
		return nil, fmt.Errorf("want an inline list like [wf03, wf07], got %q", val)
	}
	var out []string
	for _, p := range strings.Split(val[1:len(val)-1], ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// finish applies defaults and validates ranges.
func (s *Spec) finish() error {
	if s.Duration == 0 {
		s.Duration = 5 * time.Second
	}
	if s.Concurrency == 0 {
		s.Concurrency = 4
	}
	if s.Scale == 0 {
		s.Scale = 0.002
	}
	if len(s.Workflows) == 0 {
		s.Workflows = []string{"wf03"}
	}
	if len(s.Mix) == 0 {
		s.Mix = map[string]int{"optimize": 1}
	}
	switch {
	case s.Duration < 0 || s.Warmup < 0:
		return fmt.Errorf("durations must be positive")
	case s.Warmup >= s.Duration:
		return fmt.Errorf("warmup %v leaves nothing of duration %v to measure", s.Warmup, s.Duration)
	case s.Concurrency < 1:
		return fmt.Errorf("concurrency %d < 1", s.Concurrency)
	case s.QPS < 0:
		return fmt.Errorf("qps %v < 0", s.QPS)
	case s.Scale <= 0:
		return fmt.Errorf("scale %v <= 0", s.Scale)
	}
	return nil
}

// schedule expands the mix weights into a deterministic op sequence; each
// worker walks it from a different offset so the interleaving covers the
// mix without randomness.
func (s *Spec) schedule() []string {
	ops := make([]string, 0, len(s.Mix))
	for op := range s.Mix {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	var seq []string
	for _, op := range ops {
		for i := 0; i < s.Mix[op]; i++ {
			seq = append(seq, op)
		}
	}
	return seq
}
