package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpecFull(t *testing.T) {
	in := `
# bench profile
duration: 10s
warmup: 2s
concurrency: 8
qps: 50.5
scale: 0.002
workflows: [wf03, wf07, wf16]
mix:
  optimize: 6   # the hot path
  estimate: 3
  observe: 1
`
	s, err := parseSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Duration != 10*time.Second || s.Warmup != 2*time.Second {
		t.Fatalf("durations %v/%v", s.Duration, s.Warmup)
	}
	if s.Concurrency != 8 || s.QPS != 50.5 || s.Scale != 0.002 {
		t.Fatalf("parsed %+v", s)
	}
	if len(s.Workflows) != 3 || s.Workflows[1] != "wf07" {
		t.Fatalf("workflows %v", s.Workflows)
	}
	if s.Mix["optimize"] != 6 || s.Mix["estimate"] != 3 || s.Mix["observe"] != 1 {
		t.Fatalf("mix %v", s.Mix)
	}
	seq := s.schedule()
	if len(seq) != 10 {
		t.Fatalf("schedule %v", seq)
	}
	counts := map[string]int{}
	for _, op := range seq {
		counts[op]++
	}
	if counts["optimize"] != 6 || counts["estimate"] != 3 || counts["observe"] != 1 {
		t.Fatalf("schedule counts %v", counts)
	}
}

func TestParseSpecDefaults(t *testing.T) {
	s, err := parseSpec(strings.NewReader("duration: 3s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Concurrency != 4 || s.Scale != 0.002 || s.QPS != 0 {
		t.Fatalf("defaults %+v", s)
	}
	if len(s.Workflows) != 1 || s.Workflows[0] != "wf03" {
		t.Fatalf("default workflows %v", s.Workflows)
	}
	if len(s.Mix) != 1 || s.Mix["optimize"] != 1 {
		t.Fatalf("default mix %v", s.Mix)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for name, in := range map[string]string{
		"unknown key":        "rate: 5\n",
		"bad duration":       "duration: fast\n",
		"unknown mix op":     "mix:\n  teleport: 1\n",
		"zero mix weight":    "mix:\n  optimize: 0\n",
		"indent outside mix": "duration: 1s\n  optimize: 1\n",
		"inline mix":         "mix: optimize\n",
		"bare word":          "duration\n",
		"not a list":         "workflows: wf03\n",
		"empty list":         "workflows: []\n",
		"warmup too long":    "duration: 2s\nwarmup: 2s\n",
		"negative qps":       "qps: -1\n",
	} {
		if _, err := parseSpec(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
