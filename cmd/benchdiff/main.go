// Command benchdiff compares two benchjson records (BENCH_<pr>.json) and
// fails when allocations regress. It is the CI gate behind
// scripts/bench_regress.sh: the engine benchmarks that run with metrics
// collection off measure the bare interpreter, so any growth in their
// allocs/op is a real regression, not instrumentation drift.
//
// Usage:
//
//	go run ./cmd/benchdiff -base BENCH_pr3.json -head BENCH_pr6.json
//
// Only benchmarks matching -match (default: the metrics-off engine
// configurations) and present in both records are compared. A head value
// above base * (1 + -tolerance) is a regression; the tool prints every
// compared benchmark with its ratio and exits 1 if any regressed.
// Benchmark names are compared with any -<GOMAXPROCS> suffix stripped so
// records taken on machines with different core counts still line up.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// defaultMatch selects the metrics-off engine configurations: the e2e
// cycle, the plain (uninstrumented) engine run, the metrics=off arms of the
// overhead benchmark, and the engine mode/worker sweeps, all of which run
// without per-node accounting.
const defaultMatch = `^(BenchmarkE2ECycle$|BenchmarkEngineInstrumentedRun/plain$|BenchmarkMetricsOverhead/.*/metrics=off$|BenchmarkEngineMode/|BenchmarkEngineWorkers/)`

type record struct {
	Benchmarks []struct {
		Name        string `json:"name"`
		AllocsPerOp *int64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func load(path string) (map[string]int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]int64, len(rec.Benchmarks))
	for _, b := range rec.Benchmarks {
		if b.AllocsPerOp == nil {
			continue
		}
		out[gomaxprocsSuffix.ReplaceAllString(b.Name, "")] = *b.AllocsPerOp
	}
	return out, nil
}

func main() {
	base := flag.String("base", "", "baseline benchjson record (required)")
	head := flag.String("head", "", "candidate benchjson record (required)")
	match := flag.String("match", defaultMatch, "regexp of benchmark names to compare")
	tol := flag.Float64("tolerance", 0.02, "allowed fractional allocs/op increase before failing")
	flag.Parse()
	if *base == "" || *head == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -base BENCH_old.json -head BENCH_new.json")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: -match: %v\n", err)
		os.Exit(2)
	}

	baseAllocs, err := load(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	headAllocs, err := load(*head)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	var compared, regressed int
	for _, b := range sortedKeys(baseAllocs) {
		if !re.MatchString(b) {
			continue
		}
		h, ok := headAllocs[b]
		if !ok {
			fmt.Printf("MISSING  %-55s base=%d (absent from head record)\n", b, baseAllocs[b])
			regressed++
			continue
		}
		compared++
		ratio := float64(h) / float64(baseAllocs[b])
		status := "ok"
		if float64(h) > float64(baseAllocs[b])*(1+*tol) {
			status = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-9s%-55s base=%-9d head=%-9d ratio=%.3f\n", status, b, baseAllocs[b], h, ratio)
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmarks in %s match %q\n", *base, *match)
		os.Exit(1)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metrics-off benchmark(s) regressed in allocs/op\n", regressed)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d metrics-off benchmarks within %.0f%% of baseline allocs/op\n", compared, *tol*100)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
